//! The search engine: saturation of safe moves + iterative deepening over
//! risky (case-splitting) instantiations.
//!
//! Four session-lifetime caches (see `SearchCaches`) and two structural
//! ideas keep the per-state cost near-constant.  The caches: the **failure
//! memo** (below), the **specialization cache** (`max_specializations`
//! results per (quantifier, context)), the **rewrite-candidate cache** —
//! `(≠-node, literal-node) → Option<(rewritten, cost)>`, sound to share
//! globally because both keys are interned nodes and the rewrite result
//! depends on nothing else; across branches, deepening levels and batched
//! goals the overwhelming majority of pairs repeat, turning a subtree
//! rewrite into an O(1) hash probe — and the **goal-outcome cache**, which
//! replays the proof (or failure) of a root goal the session has already
//! settled, sound because every budget that could change the outcome is
//! fixed in the session's [`ProverConfig`].  Candidate joins are further narrowed by
//! the sequents' variable-occurrence index ([`Sequent::eq_literals_with_var`]):
//! a new (in)equality is paired only against literals sharing a term, not
//! the whole `inequalities() × eq_literals()` product.  Neither device
//! changes which candidates are generated or their order — unproductive
//! pairs never consumed a sequence number — so proofs are bit-identical
//! with the caches on or off.
//!
//! The structural ideas:
//!
//! * **Candidate-move inheritance.**  Within an existential-leading phase the
//!   right-hand side only ever *grows*, so the candidate ≠-rewrites and ∃
//!   specializations computed at a state remain valid at every descendant.
//!   Each state therefore inherits its parent's ranked candidate list and
//!   extends it with just the pairs involving the newly added formula — an
//!   indexed join over the sequent's per-kind slices — instead of rescanning
//!   all O(|Δ|²) pairs.  Filters that depend on growing state (the rewrite
//!   budget, "already present", "already used") are re-checked at application
//!   time; both checks are cheap hash/pointer probes on shared formulas.
//! * **A failure memo shared across goals.**  Failures are keyed by the
//!   search-relevant state — (sequent, rewrites used, used-spec set) — so a
//!   hit prunes re-entry at the same or lower risky budget.  The memo lives
//!   in a [`crate::ProverSession`], so later goals of a synthesis run (and
//!   later deepening levels) prune subtrees the earlier ones already
//!   refuted.  One caveat keeps this a *bounded-search* device rather than a
//!   semantic theorem: equal-cost candidates scan in discovery order, which
//!   is path-dependent for inherited lists, so two paths reaching the same
//!   state may saturate in different orders and — exactly at a rewrite/state
//!   budget boundary — reach different verdicts.  A memo hit can then prune
//!   an exploration that a cold scan would have ordered more luckily.  This
//!   stays within the engine's existing incompleteness envelope (budgets
//!   already make the search incomplete, and every returned proof is checked
//!   independently); the session-equivalence property test exercises goal
//!   families whose budgets are far from binding.
//!
//! **Parallel branch search.**  With [`ProverConfig::parallel_branches`]
//! set, the *first* risky choice point of each branch (where the risky
//! budget is still at its deepening level) dispatches its applicable
//! candidates onto concurrent big-stack workers instead of trying them in
//! sequence.  Branches share the session caches (they are `Sync`), carry a
//! first-success cancellation token, and commit deterministically: outcomes
//! are scanned in candidate order and the lowest successful branch index
//! wins, so the returned proof is the one the sequential scan would have
//! found.  Per-branch candidate sequence numbers restart from the parent's
//! counter; that relabeling is order-preserving within every list a branch
//! ever compares, so branch-local verdicts equal their sequential
//! counterparts (away from the shared-budget boundary, exactly the memo
//! caveat above — parallel branches each get the full remaining state
//! budget instead of consuming one shared counter).

use crate::session::ProverSession;
use nrs_delta0::specialize::{max_specializations, MaxSpecialization};
use nrs_delta0::{Formula, InContext, Term};
use nrs_proof::{formula_hash_mixed, Proof, ProofError, Rule, Sequent};
use nrs_shared::{ShardStats, ShardedMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Cached handles into the global [`nrs_obs`] registry: one name lookup per
/// process, relaxed atomic adds afterwards.  Every counter here mirrors a
/// [`ProverStats`] field, so the per-goal struct readout and the process-wide
/// registry stay two views of the same accounting.
struct ObsMetrics {
    goals: Arc<nrs_obs::Counter>,
    goal_cache_hits: Arc<nrs_obs::Counter>,
    proved: Arc<nrs_obs::Counter>,
    failed: Arc<nrs_obs::Counter>,
    timeouts: Arc<nrs_obs::Counter>,
    cancelled: Arc<nrs_obs::Counter>,
    visited: Arc<nrs_obs::Counter>,
    memo_hits: Arc<nrs_obs::Counter>,
    memo_misses: Arc<nrs_obs::Counter>,
    rewrite_cache_hits: Arc<nrs_obs::Counter>,
    rewrite_cache_misses: Arc<nrs_obs::Counter>,
    parallel_branches: Arc<nrs_obs::Counter>,
    memo_lock_acquisitions: Arc<nrs_obs::Counter>,
    memo_lock_contended: Arc<nrs_obs::Counter>,
    goal_seconds: Arc<nrs_obs::Histogram>,
    proof_size: Arc<nrs_obs::Histogram>,
    risky_level: Arc<nrs_obs::Histogram>,
}

fn obs() -> &'static ObsMetrics {
    static METRICS: OnceLock<ObsMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = nrs_obs::global();
        ObsMetrics {
            goals: r.counter("prover.goals_total"),
            goal_cache_hits: r.counter("prover.goal_cache_hits_total"),
            proved: r.counter("prover.proved_total"),
            failed: r.counter("prover.failed_total"),
            timeouts: r.counter("prover.timeouts_total"),
            cancelled: r.counter("prover.cancelled_total"),
            visited: r.counter("prover.visited_total"),
            memo_hits: r.counter("prover.memo_hits_total"),
            memo_misses: r.counter("prover.memo_misses_total"),
            rewrite_cache_hits: r.counter("prover.rewrite_cache_hits_total"),
            rewrite_cache_misses: r.counter("prover.rewrite_cache_misses_total"),
            parallel_branches: r.counter("prover.parallel_branches_total"),
            memo_lock_acquisitions: r.counter("prover.memo_lock_acquisitions_total"),
            memo_lock_contended: r.counter("prover.memo_lock_contended_total"),
            goal_seconds: r.timer("prover.goal_seconds"),
            proof_size: r.histogram("prover.proof_size"),
            risky_level: r.histogram("prover.risky_level"),
        }
    })
}

impl ObsMetrics {
    /// Fold one goal's [`ProverStats`] into the process-wide registry.
    fn record_stats(&self, stats: &ProverStats) {
        self.visited.add(stats.visited as u64);
        self.memo_hits.add(stats.memo_hits as u64);
        self.memo_misses.add(stats.memo_misses as u64);
        self.rewrite_cache_hits.add(stats.rewrite_cache_hits as u64);
        self.rewrite_cache_misses
            .add(stats.rewrite_cache_misses as u64);
        self.parallel_branches.add(stats.parallel_branches as u64);
        self.memo_lock_acquisitions
            .add(stats.memo_lock.reads + stats.memo_lock.writes);
        self.memo_lock_contended
            .add(stats.memo_lock.reads_contended + stats.memo_lock.writes_contended);
        self.proof_size.record(stats.proof_size as u64);
        self.risky_level.record(stats.risky_level as u64);
    }
}

/// Budgets controlling the proof search.
#[derive(Debug, Clone)]
pub struct ProverConfig {
    /// Maximum number of "risky" (conjunction-introducing) ∃ instantiations
    /// along any branch; iterative deepening explores 0..=max_risky.
    pub max_risky: usize,
    /// Cap on the number of formulas in a sequent before safe saturation stops.
    pub max_formulas: usize,
    /// Cap on ≠-congruence rewrites along a branch.
    pub max_rewrites: usize,
    /// Cap on candidate specializations enumerated per existential formula.
    pub spec_limit: usize,
    /// Global cap on visited search states.
    pub max_states: usize,
    /// Dispatch the candidates of each branch's first risky choice point
    /// onto concurrent big-stack workers (first success wins, lowest branch
    /// index breaks ties — proofs are identical to the sequential scan).
    /// Defaults to on when the machine has more than one CPU; on a single
    /// CPU the dispatch only adds thread overhead.
    pub parallel_branches: bool,
    /// Consult and extend the session's rewrite-candidate cache.  Purely a
    /// performance knob: generated candidates and proofs are identical with
    /// the cache off.
    pub rewrite_cache: bool,
    /// Wall-clock deadline per goal.  Checked at state-visit granularity (on
    /// every branch, including parallel workers); when it fires the search
    /// returns [`ProofError::Timeout`] — distinct from
    /// [`ProofError::BudgetExhausted`], and **never cached** in the session's
    /// goal-outcome cache, since a retry under better conditions (or a longer
    /// deadline) could succeed.  `None` (the default) means no deadline.
    pub deadline: Option<Duration>,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            max_risky: 6,
            max_formulas: 220,
            max_rewrites: 48,
            spec_limit: 64,
            max_states: 400_000,
            parallel_branches: std::thread::available_parallelism().is_ok_and(|n| n.get() > 1),
            rewrite_cache: true,
            deadline: None,
        }
    }
}

impl ProverConfig {
    /// A configuration with small budgets, for quick validity checks in tests.
    pub fn quick() -> Self {
        ProverConfig {
            max_risky: 3,
            max_formulas: 90,
            max_rewrites: 24,
            spec_limit: 32,
            max_states: 40_000,
            ..ProverConfig::default()
        }
    }

    /// A configuration with generous budgets for the harder example goals.
    pub fn thorough() -> Self {
        ProverConfig {
            max_risky: 10,
            max_formulas: 420,
            max_rewrites: 96,
            spec_limit: 128,
            max_states: 4_000_000,
            ..ProverConfig::default()
        }
    }
}

/// Statistics reported alongside a successful proof.
#[derive(Debug, Clone, Default)]
pub struct ProverStats {
    /// Number of search states visited.
    pub visited: usize,
    /// Risky budget at which the proof was found.
    pub risky_level: usize,
    /// Size (node count) of the returned proof.
    pub proof_size: usize,
    /// Failure-memo probes that pruned a subtree.
    pub memo_hits: usize,
    /// Failure-memo probes that found nothing (or nothing strong enough).
    pub memo_misses: usize,
    /// Formula/term interner constructions that reused an existing node
    /// during this search.
    pub interner_hits: u64,
    /// Formula/term interner constructions that allocated a fresh node
    /// during this search.
    pub interner_misses: u64,
    /// Rewrite-candidate probes answered by the session cache.
    pub rewrite_cache_hits: usize,
    /// Rewrite-candidate probes that had to compute (and then cache) the
    /// rewrite.
    pub rewrite_cache_misses: usize,
    /// (inequality, literal) pairs enumerated by the occurrence-indexed
    /// congruence joins.
    pub occ_join_pairs: usize,
    /// Additional pairs the unindexed full `inequalities() × eq_literals()`
    /// joins would have enumerated (all provably unproductive).
    pub occ_join_pruned: usize,
    /// Risky branch subtrees dispatched onto parallel workers.
    pub parallel_branches: usize,
    /// Whole root goals answered from the session's goal-outcome cache
    /// (1 for a replayed goal, 0 for a searched one).
    pub goal_cache_hits: usize,
    /// Lock traffic on the failure memo's [`ShardedMap`] during this goal:
    /// acquisitions and how many of them found their shard held by another
    /// worker.  `memo_lock.shards` is the shard count; `memo_lock.
    /// contention_ratio()` quantifies the PR-6 "first contention point"
    /// observation instead of assuming it.
    pub memo_lock: ShardStats,
}

/// The memo key: the search-relevant state besides the risky budget.
/// Failure recorded at risky budget `r` refutes re-entry at any budget ≤ `r`
/// (fewer rewrites used and fewer used specs can only *enlarge* the move
/// set) — up to the discovery-order caveat described in the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MemoKey {
    seq: Sequent,
    rewrites_used: usize,
    used_hash: u64,
}

/// The session-lifetime caches, shared by every goal, worker and parallel
/// branch of one [`ProverSession`].  All four are [`ShardedMap`]s —
/// concurrent probes of different shards (the common case: keys are interned
/// nodes with well-mixed cached hashes) don't serialize, and concurrent
/// readers of one shard share a read lock; the former `Mutex` wrappers made
/// every probe exclusive.  Poisoning is recovered by the map itself, keeping
/// the sessions' existing panic-tolerance behavior.
pub(crate) struct SearchCaches {
    /// Sequents known to fail, mapping to the largest risky budget refuted.
    pub(crate) memo: ShardedMap<MemoKey, usize>,
    /// Cached `max_specializations` results, keyed by (quantifier,
    /// ∈-context): the per-depth goals of one synthesis run decompose the
    /// same specification formulas under the same contexts, so a warm
    /// session stops re-enumerating their specializations goal after goal —
    /// the shared saturation prefix of a batched synthesis run.
    pub(crate) specs: ShardedMap<(Formula, InContext), Arc<Vec<MaxSpecialization>>>,
    /// Cached ≠-congruence candidates: `(inequality, literal) →
    /// Option<(rewritten, cost)>`.  Branch-independent (the value depends
    /// only on the two interned nodes), so one entry serves every branch,
    /// deepening level and goal that re-derives the pair.
    pub(crate) rewrites: ShardedMap<(Formula, Formula), Option<(Formula, usize)>>,
    /// Completed root-goal outcomes.  A session asked to settle a goal it
    /// has already settled — the watch-mode loop re-deriving an unchanged
    /// view, a synthesis batch repeating a goal at two depths — answers from
    /// here without searching.  Keying by the goal sequent alone is sound
    /// because every search budget that could change the outcome lives in
    /// the session's [`ProverConfig`], fixed at session construction.
    pub(crate) goals: ShardedMap<Sequent, GoalOutcome>,
}

/// A settled root goal, as remembered by a session: the proof found (with
/// the deepening level that found it) or the failure report.
#[derive(Debug, Clone)]
pub(crate) enum GoalOutcome {
    /// Proved; replaying returns a clone of the same proof object.
    Proved {
        proof: Box<Proof>,
        risky_level: usize,
    },
    /// Search exhausted its budgets; replaying returns the same error.
    Failed(String),
}

impl SearchCaches {
    pub(crate) fn new() -> SearchCaches {
        SearchCaches {
            memo: ShardedMap::new(),
            specs: ShardedMap::new(),
            rewrites: ShardedMap::new(),
            goals: ShardedMap::new(),
        }
    }
}

/// The set of specializations introduced along the current branch (they may
/// later disappear from the right-hand side when the invertible phase
/// decomposes them, and must not be re-introduced, which would loop forever).
///
/// A persistent cons list: extending is an O(1) push sharing the whole tail
/// with the parent state, and the order-independent combined hash makes the
/// set usable inside memo keys without materializing it.
#[derive(Debug, Clone, Default)]
struct UsedSpecs {
    head: Option<Arc<UsedNode>>,
    hash: u64,
}

#[derive(Debug)]
struct UsedNode {
    spec: Formula,
    prev: Option<Arc<UsedNode>>,
}

impl UsedSpecs {
    fn contains(&self, f: &Formula) -> bool {
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            if &node.spec == f {
                return true;
            }
            cur = node.prev.as_deref();
        }
        false
    }

    /// A copy with one more spec (specs are never pushed twice: candidate
    /// generation filters out already-used specs).
    fn push(&self, spec: Formula) -> UsedSpecs {
        UsedSpecs {
            hash: self.hash ^ formula_hash_mixed(&spec),
            head: Some(Arc::new(UsedNode {
                spec,
                prev: self.head.clone(),
            })),
        }
    }
}

/// A candidate rule with its rank; candidate lists are ordered by
/// `(cost, seqno)`, where `seqno` is the deterministic generation counter
/// (so ties preserve discovery order).
#[derive(Debug, Clone)]
struct RankedRule {
    cost: usize,
    seqno: usize,
    rule: Rule,
}

/// An append-only persistent sequence of candidate batches: extending is an
/// O(1) cons of the new batch, sharing the whole tail with the parent state.
/// Used for the two high-volume constant-cost candidate classes, where
/// generation order already equals rank order.
#[derive(Debug, Clone, Default)]
struct Chain {
    head: Option<Arc<ChainNode>>,
    len: usize,
}

#[derive(Debug)]
struct ChainNode {
    batch: Vec<RankedRule>,
    prev: Option<Arc<ChainNode>>,
}

impl Chain {
    fn push_batch(&mut self, batch: Vec<RankedRule>) {
        if batch.is_empty() {
            return;
        }
        self.len += batch.len();
        self.head = Some(Arc::new(ChainNode {
            batch,
            prev: self.head.take(),
        }));
    }

    /// Iterate oldest-first, skipping the first `skip` items.
    fn iter_from(&self, skip: usize) -> ChainIter<'_> {
        let mut nodes = Vec::new();
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            nodes.push(node);
            cur = node.prev.as_deref();
        }
        nodes.reverse();
        let mut it = ChainIter {
            nodes,
            node: 0,
            item: 0,
        };
        let mut remaining = skip;
        while remaining > 0 && it.node < it.nodes.len() {
            let avail = it.nodes[it.node].batch.len() - it.item;
            if remaining >= avail {
                remaining -= avail;
                it.node += 1;
                it.item = 0;
            } else {
                it.item += remaining;
                remaining = 0;
            }
        }
        it
    }
}

struct ChainIter<'a> {
    nodes: Vec<&'a ChainNode>,
    node: usize,
    item: usize,
}

impl<'a> Iterator for ChainIter<'a> {
    type Item = &'a RankedRule;
    fn next(&mut self) -> Option<&'a RankedRule> {
        while self.node < self.nodes.len() {
            let batch = &self.nodes[self.node].batch;
            if self.item < batch.len() {
                let out = &batch[self.item];
                self.item += 1;
                return Some(out);
            }
            self.node += 1;
            self.item = 0;
        }
        None
    }
}

/// Per-class counts of leading candidates known to be dead.  Every skip
/// condition of the scan (`rewritten`/`spec` already present, spec already
/// used, rewrite budget exhausted) is *monotone along a branch*, so a
/// candidate skipped at a state stays skippable at every descendant — the
/// child starts its scan past the prefix the parent already refuted.
///
/// Positional counts are only sound for the **append-only** classes (the
/// chains and the closing vector): extensions there always land after the
/// counted prefix.  The `specs`/`risky` classes use sorted insertion, where
/// a cheaper new candidate could slip *inside* a counted prefix, so those
/// two are always scanned from the start (they stay small).
#[derive(Debug, Clone, Copy, Default)]
struct DeadCounts {
    closing: usize,
    eqs: usize,
    noisy: usize,
}

/// The candidate moves of an existential-leading phase, inherited and
/// extended down the branch, bucketed by rank class.  The scan order is
/// closing rewrites (cost 0), then specializations merged with equality
/// rewrites by `(cost, seqno)`, then the noisy inequality rewrites — the
/// same ranking the engine used when it kept one flat sorted list.
#[derive(Debug, Clone, Default)]
struct Moves {
    /// Closing rewrites (the premise gains `a = a`); cost 0.
    closing: Arc<Vec<RankedRule>>,
    /// Safe ∃ specializations, sorted by `(2 + size, seqno)`.
    specs: Arc<Vec<RankedRule>>,
    /// Equality-atom rewrites; constant cost 6, generation-ordered.
    eqs: Chain,
    /// Inequality-atom rewrites (equation composition); constant cost 1000,
    /// generation-ordered.
    noisy: Chain,
    /// Risky (conjunction-introducing) ∃ specializations, sorted by
    /// `(size, seqno)`.
    risky: Arc<Vec<RankedRule>>,
    /// Leading candidates this branch has already refuted, per class.
    dead: DeadCounts,
}

fn insert_ranked(list: &mut Arc<Vec<RankedRule>>, item: RankedRule) {
    let pos = list.partition_point(|r| (r.cost, r.seqno) <= (item.cost, item.seqno));
    Arc::make_mut(list).insert(pos, item);
}

/// Freshly generated candidates, collected per class before being merged
/// into a [`Moves`] (so the chain classes get one O(1) batch push).
#[derive(Debug, Default)]
struct MoveBatch {
    closing: Vec<RankedRule>,
    specs: Vec<RankedRule>,
    eqs: Vec<RankedRule>,
    noisy: Vec<RankedRule>,
    risky: Vec<RankedRule>,
}

impl MoveBatch {
    fn merge_into(self, moves: &mut Moves) {
        if !self.closing.is_empty() {
            Arc::make_mut(&mut moves.closing).extend(self.closing);
        }
        for item in self.specs {
            insert_ranked(&mut moves.specs, item);
        }
        moves.eqs.push_batch(self.eqs);
        moves.noisy.push_batch(self.noisy);
        for item in self.risky {
            insert_ranked(&mut moves.risky, item);
        }
    }
}

struct State<'a> {
    cfg: &'a ProverConfig,
    visited: usize,
    aborted: bool,
    /// Set alongside `aborted` when the abort came from the parallel
    /// cancellation token rather than the state budget (a cancelled branch's
    /// result is discarded; a budget abort must stop the whole search).
    cancelled: bool,
    /// The absolute wall-clock deadline ([`ProverConfig::deadline`] resolved
    /// against this goal's start time), if any.
    deadline: Option<Instant>,
    /// Set alongside `aborted` when the abort came from the wall-clock
    /// deadline: the whole search stops and reports [`ProofError::Timeout`],
    /// and nothing is recorded in the goal-outcome cache.
    timed_out: bool,
    /// The session's cooperative cancellation token
    /// ([`ProverSession::cancel`]), if the search runs under one.
    ext_cancel: Option<&'a AtomicBool>,
    /// Set alongside `aborted` when the abort came from `ext_cancel`: the
    /// whole search stops and reports [`ProofError::Cancelled`], uncached.
    ext_cancelled: bool,
    trace: bool,
    /// The session-shared caches (failure memo, specializations, rewrite
    /// candidates) — see `SearchCaches`.
    caches: &'a SearchCaches,
    memo_hits: usize,
    memo_misses: usize,
    rewrite_hits: usize,
    rewrite_misses: usize,
    occ_pairs: usize,
    occ_pruned: usize,
    branches_dispatched: usize,
    move_seqno: usize,
    /// The deepening level this attempt runs at; a risky choice point is
    /// *top-level* (eligible for parallel dispatch) while the remaining
    /// risky budget still equals it.
    level: usize,
    /// On parallel branch states: the first-success cell and this branch's
    /// candidate index.  A branch aborts (as `cancelled`) once a
    /// lower-indexed branch has won.
    cancel: Option<(&'a AtomicUsize, usize)>,
}

/// Prove `Θ ; ⊢ Δ` (one-sided), returning a checked proof object.
///
/// The search recursion can get deep (one stack frame per saturation step),
/// so the search runs on a dedicated thread with a large stack; callers see an
/// ordinary synchronous function.  This convenience entry point spins up a
/// throwaway [`ProverSession`]; callers proving several related goals should
/// create one session and reuse it, which shares the failure memo (and the
/// worker thread) across the goals.
pub fn prove_sequent(
    sequent: &Sequent,
    cfg: &ProverConfig,
) -> Result<(Proof, ProverStats), ProofError> {
    ProverSession::new(cfg.clone()).prove_sequent(sequent)
}

/// The search proper; runs on a session worker thread (big stack).
/// `ext_cancel` is the session's cooperative cancellation token, observed at
/// state-visit granularity alongside the wall-clock deadline.
pub(crate) fn prove_sequent_inner(
    sequent: &Sequent,
    cfg: &ProverConfig,
    caches: &SearchCaches,
    ext_cancel: Option<&AtomicBool>,
) -> Result<(Proof, ProverStats), ProofError> {
    nrs_obs::init_from_env();
    let m = obs();
    m.goals.inc();
    let mut goal_span = nrs_obs::span("prover.goal");
    if let Some(outcome) = caches.goals.get(sequent) {
        m.goal_cache_hits.inc();
        goal_span.record("cached", true);
        return match outcome {
            GoalOutcome::Proved { proof, risky_level } => {
                let stats = ProverStats {
                    risky_level,
                    proof_size: proof.size(),
                    goal_cache_hits: 1,
                    ..ProverStats::default()
                };
                Ok((*proof, stats))
            }
            // Only budget verdicts are ever cached (timeouts and
            // cancellations return before the insertion below), so a replayed
            // failure is by construction a budget exhaustion.
            GoalOutcome::Failed(msg) => Err(ProofError::BudgetExhausted(msg)),
        };
    }
    let interner_before = nrs_delta0::intern_stats();
    let memo_before = caches.memo.stats();
    let start = Instant::now();
    let mut st = State {
        cfg,
        visited: 0,
        aborted: false,
        cancelled: false,
        deadline: cfg.deadline.map(|d| start + d),
        timed_out: false,
        ext_cancel,
        ext_cancelled: false,
        // Per-visit events are expensive (one formatted event per search
        // state); they ride the span layer's `detailed` flag, which
        // `NRS_PROVER_TRACE` still turns on via `init_from_env` above.
        trace: nrs_obs::detailed(),
        caches,
        memo_hits: 0,
        memo_misses: 0,
        rewrite_hits: 0,
        rewrite_misses: 0,
        occ_pairs: 0,
        occ_pruned: 0,
        branches_dispatched: 0,
        move_seqno: 0,
        level: 0,
        cancel: None,
    };
    for level in 0..=cfg.max_risky {
        st.aborted = false;
        st.level = level;
        let used = UsedSpecs::default();
        let mut level_span = nrs_obs::span("prover.deepen").with("level", level);
        let visited_before = st.visited;
        let outcome = attempt(sequent, level, 0, &used, None, &mut st);
        level_span.record("visited", st.visited - visited_before);
        level_span.record("proved", outcome.is_some());
        drop(level_span);
        if let Some(proof) = outcome {
            let interner_after = nrs_delta0::intern_stats();
            let stats = ProverStats {
                visited: st.visited,
                risky_level: level,
                proof_size: proof.size(),
                memo_hits: st.memo_hits,
                memo_misses: st.memo_misses,
                interner_hits: interner_after.hits - interner_before.hits,
                interner_misses: interner_after.misses - interner_before.misses,
                rewrite_cache_hits: st.rewrite_hits,
                rewrite_cache_misses: st.rewrite_misses,
                occ_join_pairs: st.occ_pairs,
                occ_join_pruned: st.occ_pruned,
                parallel_branches: st.branches_dispatched,
                goal_cache_hits: 0,
                memo_lock: caches.memo.stats() - memo_before,
            };
            caches.goals.insert(
                sequent.clone(),
                GoalOutcome::Proved {
                    proof: Box::new(proof.clone()),
                    risky_level: level,
                },
            );
            m.proved.inc();
            m.record_stats(&stats);
            m.goal_seconds.record_duration(start.elapsed());
            goal_span.record("proved", true);
            goal_span.record("level", level);
            goal_span.record("visited", stats.visited);
            return Ok((proof, stats));
        }
        // Transient aborts return immediately and are NOT cached: the same
        // goal retried with more time (or without the cancellation) could
        // succeed, and the session's goal-outcome cache must only remember
        // verdicts that are stable for its configuration.
        if st.timed_out {
            m.timeouts.inc();
            m.visited.add(st.visited as u64);
            m.goal_seconds.record_duration(start.elapsed());
            nrs_obs::error("prover.timeout", format_args!("visited {}", st.visited));
            return Err(ProofError::Timeout {
                elapsed_ms: start.elapsed().as_millis() as u64,
                visited: st.visited,
            });
        }
        if st.ext_cancelled {
            m.cancelled.inc();
            m.visited.add(st.visited as u64);
            m.goal_seconds.record_duration(start.elapsed());
            return Err(ProofError::Cancelled);
        }
        if st.visited >= cfg.max_states {
            break;
        }
    }
    let msg = format!(
        "no proof found within budgets (visited {} states, max risky {})",
        st.visited, cfg.max_risky
    );
    caches
        .goals
        .insert(sequent.clone(), GoalOutcome::Failed(msg.clone()));
    m.failed.inc();
    m.visited.add(st.visited as u64);
    m.memo_hits.add(st.memo_hits as u64);
    m.memo_misses.add(st.memo_misses as u64);
    m.rewrite_cache_hits.add(st.rewrite_hits as u64);
    m.rewrite_cache_misses.add(st.rewrite_misses as u64);
    m.parallel_branches.add(st.branches_dispatched as u64);
    m.goal_seconds.record_duration(start.elapsed());
    goal_span.record("proved", false);
    goal_span.record("visited", st.visited);
    Err(ProofError::BudgetExhausted(msg))
}

/// Convenience wrapper: prove that `assumptions` entail one of `goals` under
/// the membership context `ctx` (a two-sided sequent `Θ; Γ ⊢ Δ`).
pub fn prove(
    ctx: &InContext,
    assumptions: &[Formula],
    goals: &[Formula],
    cfg: &ProverConfig,
) -> Result<(Proof, ProverStats), ProofError> {
    let seq = Sequent::two_sided(
        ctx.clone(),
        assumptions.iter().cloned(),
        goals.iter().cloned(),
    );
    prove_sequent(&seq, cfg)
}

/// Does the formula contain a conjunction anywhere?  Specializations with
/// conjunctions force case splits when decomposed, so they are the "risky"
/// moves explored with backtracking.
fn contains_and(f: &Formula) -> bool {
    match f {
        Formula::And(_, _) => true,
        Formula::Or(a, b) => contains_and(a) || contains_and(b),
        Formula::Forall { body, .. } | Formula::Exists { body, .. } => contains_and(body),
        _ => false,
    }
}

/// Remember that a specialization has been introduced along the current
/// branch.  Only the ∃ rule extends the set; every other rule shares it.
fn extend_used(used: &UsedSpecs, rule: &Rule) -> UsedSpecs {
    match rule {
        Rule::Exists { spec, .. } => used.push(spec.clone()),
        _ => used.clone(),
    }
}

fn find_axiom(seq: &Sequent) -> Option<Rule> {
    for f in seq.equalities() {
        if let Formula::EqUr(t, u) = f {
            if t == u {
                return Some(Rule::EqRefl { term: t.clone() });
            }
        }
    }
    if seq.contains(&Formula::True) {
        return Some(Rule::Top);
    }
    None
}

impl<'a> State<'a> {
    fn specializations(&mut self, quant: &Formula, ctx: &InContext) -> Arc<Vec<MaxSpecialization>> {
        if let Some(cached) = self.caches.specs.get(&(quant.clone(), ctx.clone())) {
            return cached;
        }
        // computed outside any lock: enumeration can be expensive, and two
        // workers racing on the same key simply overwrite with equal values
        let specs = Arc::new(max_specializations(quant, ctx, self.cfg.spec_limit));
        self.caches
            .specs
            .insert((quant.clone(), ctx.clone()), specs.clone());
        specs
    }

    /// The branch-independent rewrite for an (inequality, literal) pair,
    /// through the session cache when enabled (both keys are interned nodes,
    /// so the probe is O(1) and the cached value is valid for every state
    /// that re-derives the pair).
    fn rewrite_candidate(
        &mut self,
        ineq: &Formula,
        atom: &Formula,
        t: &Term,
        u: &Term,
    ) -> Option<(Formula, usize)> {
        if !self.cfg.rewrite_cache {
            return compute_rewrite(atom, t, u);
        }
        let key = (ineq.clone(), atom.clone());
        if let Some(cached) = self.caches.rewrites.get(&key) {
            self.rewrite_hits += 1;
            return cached;
        }
        self.rewrite_misses += 1;
        let computed = compute_rewrite(atom, t, u);
        self.caches.rewrites.insert(key, computed.clone());
        computed
    }

    fn next_seqno(&mut self) -> usize {
        self.move_seqno += 1;
        self.move_seqno
    }
}

/// The branch-independent part of a ≠-congruence candidate: the rewritten
/// atom and its rank, or `None` when the pair can never yield a move.
fn compute_rewrite(
    atom: &Formula,
    t: &nrs_delta0::Term,
    u: &nrs_delta0::Term,
) -> Option<(Formula, usize)> {
    let rewritten = atom.replace_term(t, u);
    if &rewritten == atom || matches!(&rewritten, Formula::NeqUr(a, b) if a == b) {
        return None;
    }
    let cost = if matches!(&rewritten, Formula::EqUr(a, b) if a == b) {
        0
    } else if matches!(atom, Formula::EqUr(_, _)) {
        6
    } else {
        1000
    };
    Some((rewritten, cost))
}

/// Generate the ≠-congruence candidates for one (inequality, atom) pair.
/// Rewriting equality atoms is how positive equational reasoning happens in
/// the one-sided calculus; rewriting inequality atoms composes equations and
/// is occasionally needed, but mostly generates noise, so it ranks last.
/// Closing rewrites (producing `a = a`) rank first.
fn push_neq_candidates(
    seq: &Sequent,
    ineq: &Formula,
    atom: &Formula,
    batch: &mut MoveBatch,
    st: &mut State,
) {
    let (t, u) = match ineq {
        Formula::NeqUr(t, u) if t != u => (t, u),
        _ => return,
    };
    if !matches!(atom, Formula::EqUr(_, _) | Formula::NeqUr(_, _)) {
        return;
    }
    let Some((rewritten, cost)) = st.rewrite_candidate(ineq, atom, t, u) else {
        return;
    };
    if seq.contains(&rewritten) {
        return;
    }
    let rule = Rule::Neq {
        ineq: ineq.clone(),
        atom: atom.clone(),
        rewritten,
    };
    let item = RankedRule {
        cost,
        seqno: st.next_seqno(),
        rule,
    };
    match cost {
        0 => batch.closing.push(item),
        6 => batch.eqs.push(item),
        _ => batch.noisy.push(item),
    }
}

/// Generate the ∃ candidates for one existential: its maximal specializations
/// with respect to the ∈-context.  Safe specializations (no conjunction) rank
/// by size among the safe moves — large ones spawn fresh universals and can
/// otherwise starve the finishing moves; conjunction-introducing ones are the
/// risky backtracking points, smallest (goal-instantiation-like) first.
fn push_exists_candidates(
    seq: &Sequent,
    quant: &Formula,
    used: &UsedSpecs,
    batch: &mut MoveBatch,
    st: &mut State,
) {
    let specs = st.specializations(quant, &seq.ctx);
    for ms in specs.iter() {
        if ms.used.is_empty() || used.contains(&ms.result) {
            continue;
        }
        // "Already present" may only be used as a *generation-time* filter
        // for shapes the calculus never removes from the right-hand side:
        // an ∧/∨/∀ result that currently coincides with a formula in Δ can
        // become absent again once the invertible phase decomposes that
        // formula, and an inherited list must not have dropped it for good.
        // (Application time re-checks presence either way.)
        let removable = matches!(
            ms.result,
            Formula::And(_, _) | Formula::Or(_, _) | Formula::Forall { .. }
        );
        if !removable && seq.contains(&ms.result) {
            continue;
        }
        let rule = Rule::Exists {
            quant: quant.clone(),
            spec: ms.result.clone(),
        };
        let size = ms.result.size();
        if contains_and(&ms.result) {
            batch.risky.push(RankedRule {
                cost: size,
                seqno: st.next_seqno(),
                rule,
            });
        } else {
            batch.specs.push(RankedRule {
                cost: 2 + size,
                seqno: st.next_seqno(),
                rule,
            });
        }
    }
}

/// The literals a given inequality `t ≠ u` can rewrite, via the sequent's
/// occurrence index: the bucket of one free variable of `t` (a superset of
/// the literals `t` occurs in — see [`Sequent::eq_literals_with_var`]), or
/// the full literal slice when `t` is ground.  Restriction of a sorted slice
/// preserves iteration order, and no *productive* pair is ever dropped, so
/// the generated candidates (and their sequence numbers) are identical to
/// the full join's.
fn atoms_for<'s>(seq: &'s Sequent, t: &Term, st: &mut State) -> &'s [Formula] {
    let atoms = match t.free_vars_arc().iter().next() {
        Some(v) => seq.eq_literals_with_var(v),
        None => seq.eq_literals(),
    };
    st.occ_pairs += atoms.len();
    st.occ_pruned += seq.eq_literals().len() - atoms.len();
    atoms
}

/// The inequalities whose left term can occur in the literal `f`, visited in
/// sorted (full-scan) order without allocating.  Single-variable literals —
/// the common case — iterate one occurrence-index bucket directly: buckets
/// sort variant-first, so their ≠ literals form a contiguous suffix and the
/// whole visit is a subslice walk.  Other shapes scan the inequality slice
/// with a cached free-variable subset test (if the left term occurs in `f`,
/// every free variable of the term is free in `f`).  Both paths are sorted
/// supersets of the productive rewriters: only pairs `compute_rewrite` would
/// reject are skipped, so the generated candidates (and their sequence
/// numbers) are identical to the full join\'s.
fn rewriters_for<'s>(seq: &'s Sequent, f: &Formula) -> Rewriters<'s> {
    let fv = f.free_vars_arc();
    if fv.len() == 1 && seq.ground_lhs_inequalities().is_empty() {
        let v = fv.iter().next().expect("len-1 set");
        let bucket = seq.eq_literals_with_var(v);
        let start = bucket.partition_point(|g| g.variant_rank() < 1);
        return Rewriters::Bucket(bucket[start..].iter());
    }
    Rewriters::Scan {
        inner: seq.inequalities().iter(),
        fv,
    }
}

/// Iterator behind [`rewriters_for`]; both variants borrow the sequent\'s
/// slices and yield in sorted order.
enum Rewriters<'s> {
    /// The ≠ suffix of one occurrence-index bucket.
    Bucket(std::slice::Iter<'s, Formula>),
    /// The inequality slice, filtered by the subset test against the
    /// literal\'s cached free-variable set.
    Scan {
        inner: std::slice::Iter<'s, Formula>,
        fv: Arc<std::collections::BTreeSet<nrs_value::Name>>,
    },
}

impl<'s> Iterator for Rewriters<'s> {
    type Item = &'s Formula;
    fn next(&mut self) -> Option<&'s Formula> {
        match self {
            Rewriters::Bucket(it) => it.next(),
            Rewriters::Scan { inner, fv } => {
                for ineq in inner {
                    let Formula::NeqUr(t, _) = ineq else {
                        continue;
                    };
                    let tfv = t.free_vars_arc();
                    if tfv.is_empty() || tfv.iter().all(|v| fv.contains(v)) {
                        return Some(ineq);
                    }
                }
                None
            }
        }
    }
}

/// The witness for a ∀ step: the smallest `ev#k` name fresh for the sequent.
/// Equivalent to `NameGen::avoiding(seq.free_vars().iter()).fresh("ev")` —
/// and it must stay exactly that, so identical sequents keep introducing
/// identical witnesses — but computed by scanning the cached per-node
/// free-variable sets instead of materializing their union.
fn fresh_eigenvariable(seq: &Sequent) -> nrs_value::Name {
    let mut max = 0u64;
    let mut scan = |names: &std::collections::BTreeSet<nrs_value::Name>| {
        for n in names {
            if let Some(rest) = n.as_str().rsplit('#').next() {
                if let Ok(k) = rest.parse::<u64>() {
                    max = max.max(k + 1);
                }
            }
        }
    };
    for atom in seq.ctx.iter() {
        scan(&atom.elem.free_vars_arc());
        scan(&atom.set.free_vars_arc());
    }
    for f in seq.rhs() {
        scan(&f.free_vars_arc());
    }
    nrs_value::Name::new(format!("ev#{max}"))
}

/// Full candidate scan, used when (re-)entering an existential-leading phase:
/// an occurrence-indexed join of the inequality slice against the literal
/// buckets, plus the specializations of the existential slice.
fn full_moves(seq: &Sequent, used: &UsedSpecs, st: &mut State) -> Moves {
    let mut moves = Moves::default();
    let mut batch = MoveBatch::default();
    for ineq in seq.inequalities() {
        let Formula::NeqUr(t, _) = ineq else {
            unreachable!("the inequality slice holds only ≠ literals")
        };
        for atom in atoms_for(seq, t, st) {
            push_neq_candidates(seq, ineq, atom, &mut batch, st);
        }
    }
    for quant in seq.existentials() {
        push_exists_candidates(seq, quant, used, &mut batch, st);
    }
    batch.merge_into(&mut moves);
    moves
}

/// Build the candidate moves a premise inherits: the parent's moves (shared),
/// the dead-prefix counts the parent's scan established, and the new
/// candidates arising from the formulas the applied rule added (the
/// "delta") — occurrence-indexed joins against the per-kind slices.
fn child_moves(
    premise: &Sequent,
    parent: &Moves,
    delta: &[&Formula],
    dead: DeadCounts,
    used: &UsedSpecs,
    st: &mut State,
) -> Moves {
    let mut moves = parent.clone();
    moves.dead = dead;
    let mut batch = MoveBatch::default();
    for &f in delta {
        match f {
            Formula::EqUr(_, _) => {
                // a new atom for every inequality that can rewrite it
                let total = premise.inequalities().len();
                let mut seen = 0;
                for ineq in rewriters_for(premise, f) {
                    seen += 1;
                    push_neq_candidates(premise, ineq, f, &mut batch, st);
                }
                st.occ_pairs += seen;
                st.occ_pruned += total - seen;
            }
            Formula::NeqUr(t, _) => {
                // as a new inequality against every literal containing its
                // left term (including itself)…
                for atom in atoms_for(premise, t, st) {
                    push_neq_candidates(premise, f, atom, &mut batch, st);
                }
                // …and as a new atom for the other inequalities
                let total = premise.inequalities().len();
                let mut seen = 0;
                for ineq in rewriters_for(premise, f) {
                    seen += 1;
                    if ineq != f {
                        push_neq_candidates(premise, ineq, f, &mut batch, st);
                    }
                }
                st.occ_pairs += seen;
                st.occ_pruned += total - seen;
            }
            Formula::Exists { .. } => push_exists_candidates(premise, f, used, &mut batch, st),
            _ => {}
        }
    }
    batch.merge_into(&mut moves);
    moves
}

/// Find the highest-ranked applicable safe move: closing rewrites, then
/// specializations merged with equality rewrites by `(cost, seqno)`, then
/// the noisy rewrites.  Every candidate examined before the chosen one is
/// dead (its skip condition is monotone), so the returned [`DeadCounts`]
/// tell the child where to resume.
/// Forward candidate moves through one invertible step.  The decomposed
/// principal (∧/∨/∀) is never a candidate source, and every scan skip is
/// monotone, so the premise keeps the parent's candidates and dead counts;
/// only the pieces the step adds contribute new candidates.  A ∀ step also
/// extends the ∈-context, which can enable new specializations of *every*
/// existential, so its premise rebuilds the two specialization classes from
/// the per-kind slice (memoized per (quantifier, context) in the spec cache).
fn forward_moves(
    parent: &Moves,
    principal: &Formula,
    rule: &Rule,
    premise_index: usize,
    premise: &Sequent,
    used: &UsedSpecs,
    st: &mut State,
) -> Moves {
    match (principal, rule) {
        (Formula::And(a, b), Rule::And { .. }) => {
            let component = if premise_index == 0 { a } else { b };
            child_moves(premise, parent, &[&**component], parent.dead, used, st)
        }
        (Formula::Or(a, b), Rule::Or { .. }) => {
            // the disjuncts pass through as shared handles — no unsharing
            child_moves(premise, parent, &[&**a, &**b], parent.dead, used, st)
        }
        (Formula::Forall { var, body, .. }, Rule::Forall { witness, .. }) => {
            let mut base = parent.clone();
            base.specs = Arc::new(Vec::new());
            base.risky = Arc::new(Vec::new());
            let mut batch = MoveBatch::default();
            for quant in premise.existentials() {
                push_exists_candidates(premise, quant, used, &mut batch, st);
            }
            let instantiated = body.subst_var(var, &Term::Var(*witness));
            if matches!(instantiated, Formula::EqUr(_, _) | Formula::NeqUr(_, _)) {
                batch.merge_into(&mut base);
                return child_moves(premise, &base, &[&instantiated], base.dead, used, st);
            }
            batch.merge_into(&mut base);
            base
        }
        _ => unreachable!("invertible phase only decomposes ∧/∨/∀"),
    }
}

/// The outcome of the safe-move scan: the chosen rule (if any) with the dead
/// counts its child inherits (prefix + the chosen rule itself), plus the
/// dead prefix alone — what risky children may resume from, since the chosen
/// rule stays applicable on their branches.
struct SafePick<'m> {
    chosen: Option<(&'m RankedRule, DeadCounts)>,
    dead_prefix: DeadCounts,
}

fn pick_safe_move<'m>(
    seq: &Sequent,
    moves: &'m Moves,
    rewrites_used: usize,
    used: &UsedSpecs,
    st: &mut State,
) -> SafePick<'m> {
    let mut dead = moves.dead;
    for r in moves.closing.iter().skip(dead.closing) {
        if still_applicable(seq, &r.rule, rewrites_used, used, st.cfg) {
            let mut child = dead;
            child.closing += 1;
            return SafePick {
                chosen: Some((r, child)),
                dead_prefix: dead,
            };
        }
        dead.closing += 1;
    }
    let mut specs = moves.specs.iter().peekable();
    let mut eqs = moves.eqs.iter_from(dead.eqs).peekable();
    loop {
        let take_spec = match (specs.peek(), eqs.peek()) {
            (Some(sp), Some(eq)) => (sp.cost, sp.seqno) <= (eq.cost, eq.seqno),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let (r, class) = if take_spec {
            (*specs.peek().expect("peeked"), 0)
        } else {
            (*eqs.peek().expect("peeked"), 1)
        };
        if still_applicable(seq, &r.rule, rewrites_used, used, st.cfg) {
            let mut child = dead;
            if class == 1 {
                child.eqs += 1;
            }
            return SafePick {
                chosen: Some((r, child)),
                dead_prefix: dead,
            };
        }
        if class == 0 {
            specs.next();
        } else {
            eqs.next();
            dead.eqs += 1;
        }
    }
    for r in moves.noisy.iter_from(dead.noisy) {
        if still_applicable(seq, &r.rule, rewrites_used, used, st.cfg) {
            let mut child = dead;
            child.noisy += 1;
            return SafePick {
                chosen: Some((r, child)),
                dead_prefix: dead,
            };
        }
        dead.noisy += 1;
    }
    SafePick {
        chosen: None,
        dead_prefix: dead,
    }
}

/// Filters that depend on state accumulated since a candidate was generated,
/// re-checked at application time.  All probes are O(log |Δ|) with O(1)
/// comparisons on shared formulas.
fn still_applicable(
    seq: &Sequent,
    rule: &Rule,
    rewrites_used: usize,
    used: &UsedSpecs,
    cfg: &ProverConfig,
) -> bool {
    match rule {
        Rule::Neq { rewritten, .. } => rewrites_used < cfg.max_rewrites && !seq.contains(rewritten),
        Rule::Exists { spec, .. } => !seq.contains(spec) && !used.contains(spec),
        _ => true,
    }
}

/// The formula a safe/risky move adds to its premise (the "delta" its child
/// state extends the inherited candidates with).
fn added_formula(rule: &Rule) -> &Formula {
    match rule {
        Rule::Neq { rewritten, .. } => rewritten,
        Rule::Exists { spec, .. } => spec,
        other => unreachable!("saturation applies only ≠/∃ rules, got {}", other.name()),
    }
}

fn attempt(
    seq: &Sequent,
    risky_budget: usize,
    rewrites_used: usize,
    used: &UsedSpecs,
    inherited: Option<Moves>,
    st: &mut State,
) -> Option<Proof> {
    if st.aborted {
        return None;
    }
    if let Some((winner, index)) = st.cancel {
        // a lower-indexed parallel branch already won: this branch's result
        // is irrelevant, stop exploring (and stop recording failures — the
        // abort flag guards the memo writes below)
        if winner.load(Ordering::Relaxed) < index {
            st.aborted = true;
            st.cancelled = true;
            return None;
        }
    }
    if st.trace {
        // The span-layer successor of the old `NRS_PROVER_TRACE` eprintln:
        // one detailed event per visited state, attached to the enclosing
        // deepening span (the text sink renders it as a single stderr line).
        nrs_obs::event(
            "prover.visit",
            vec![
                ("visited", st.visited.into()),
                ("risky", risky_budget.into()),
                ("rewrites", rewrites_used.into()),
                ("sequent", seq.to_string().into()),
            ],
        );
    }
    st.visited += 1;
    if st.visited >= st.cfg.max_states {
        st.aborted = true;
        return None;
    }
    if let Some(deadline) = st.deadline {
        if Instant::now() >= deadline {
            st.aborted = true;
            st.timed_out = true;
            return None;
        }
    }
    if let Some(flag) = st.ext_cancel {
        if flag.load(Ordering::Relaxed) {
            st.aborted = true;
            st.ext_cancelled = true;
            return None;
        }
    }

    // 1. axioms
    if let Some(rule) = find_axiom(seq) {
        return Some(Proof::by_unchecked(seq.clone(), rule, vec![]));
    }

    // 2. invertible decomposition (∧ / ∨ / ∀ are invertible, so no
    //    backtracking over them).  Candidate moves flow *through* the phase:
    //    the principal formula is never a candidate source, so ∧/∨ premises
    //    inherit everything plus the deltas from their components, and the ∀
    //    premise inherits the rewrite classes while its specialization
    //    classes are rebuilt under the extended ∈-context.
    if let Some(f) = seq.first_invertible() {
        let f = f.clone();
        let rule = match &f {
            Formula::And(_, _) => Rule::And { conj: f.clone() },
            Formula::Or(_, _) => Rule::Or { disj: f.clone() },
            // The eigenvariable is a deterministic function of the state
            // (the smallest fresh `ev#k`), not of the path that reached it:
            // identical sequents reached along different branches — or while
            // proving different goals — introduce identical witnesses, so
            // their subtrees coincide and the failure memo can see it.
            Formula::Forall { .. } => Rule::Forall {
                quant: f.clone(),
                witness: fresh_eigenvariable(seq),
            },
            _ => unreachable!(),
        };
        let premises = rule.premises_unchecked(seq);
        let mut sub = Vec::with_capacity(premises.len());
        for (i, p) in premises.iter().enumerate() {
            let forwarded = inherited
                .as_ref()
                .map(|m| forward_moves(m, &f, &rule, i, p, used, st));
            sub.push(attempt(
                p,
                risky_budget,
                rewrites_used,
                used,
                forwarded,
                st,
            )?);
        }
        return Some(Proof::by_unchecked(seq.clone(), rule, sub));
    }

    // 3. memoized failure?  (a cheap hash probe: the sequent hash is cached)
    let key = MemoKey {
        seq: seq.clone(),
        rewrites_used,
        used_hash: used.hash,
    };
    if let Some(known) = st.caches.memo.get(&key) {
        if risky_budget <= known {
            st.memo_hits += 1;
            return None;
        }
    }
    st.memo_misses += 1;

    // 4. candidate moves: inherited (already extended by the parent) when
    //    possible, recomputed from the per-kind slices otherwise
    let moves = match inherited {
        Some(moves) => moves,
        None => full_moves(seq, used, st),
    };

    let room = seq.rhs().len() < st.cfg.max_formulas;

    // 5. apply the highest-ranked applicable safe move (saturation proceeds
    //    one deterministic step at a time; the recursive call picks up the
    //    remaining moves).
    if room {
        let picked = pick_safe_move(seq, &moves, rewrites_used, used, st);
        let safe_dead_prefix = picked.dead_prefix;
        if let Some((ranked, child_dead)) = picked.chosen {
            {
                let premises = ranked.rule.premises_unchecked(seq);
                let rewrites = rewrites_used + usize::from(matches!(ranked.rule, Rule::Neq { .. }));
                let extended_used = extend_used(used, &ranked.rule);
                let delta = [added_formula(&ranked.rule)];
                let inherited =
                    child_moves(&premises[0], &moves, &delta, child_dead, &extended_used, st);
                if let Some(sub) = attempt(
                    &premises[0],
                    risky_budget,
                    rewrites,
                    &extended_used,
                    Some(inherited),
                    st,
                ) {
                    return Some(Proof::by_unchecked(
                        seq.clone(),
                        ranked.rule.clone(),
                        vec![sub],
                    ));
                }
                // a safe move never needs alternatives: it only adds
                // information, so if the extended sequent is unprovable
                // within budget, so is this one — fall through to the risky
                // moves.
            }
        }

        // 6. risky moves with backtracking (smallest specializations first:
        //    they tend to be goal instantiations).  Applicability depends
        //    only on this state — not on which earlier candidates were
        //    tried — so the applicable set can be collected up front, which
        //    is what the parallel dispatch needs.
        if risky_budget > 0 {
            let applicable: Vec<&RankedRule> = moves
                .risky
                .iter()
                .filter(|r| still_applicable(seq, &r.rule, rewrites_used, used, st.cfg))
                .collect();
            // parallel dispatch only at a branch's *first* risky choice
            // point (bounded fan-out), and never nested inside a branch
            let parallel = st.cfg.parallel_branches
                && st.cancel.is_none()
                && risky_budget == st.level
                && applicable.len() >= 2;
            if parallel {
                if let Some(proof) = parallel_risky(
                    seq,
                    &moves,
                    &applicable,
                    risky_budget,
                    rewrites_used,
                    used,
                    safe_dead_prefix,
                    st,
                ) {
                    return Some(proof);
                }
                if st.aborted {
                    return None;
                }
            } else {
                for ranked in applicable {
                    if st.aborted {
                        return None;
                    }
                    let premises = ranked.rule.premises_unchecked(seq);
                    let extended_used = extend_used(used, &ranked.rule);
                    let delta = [added_formula(&ranked.rule)];
                    // the append-only safe classes resume from the prefix
                    // the safe scan refuted; the sorted classes rescan from 0
                    let inherited = child_moves(
                        &premises[0],
                        &moves,
                        &delta,
                        safe_dead_prefix,
                        &extended_used,
                        st,
                    );
                    if let Some(sub) = attempt(
                        &premises[0],
                        risky_budget - 1,
                        rewrites_used,
                        &extended_used,
                        Some(inherited),
                        st,
                    ) {
                        return Some(Proof::by_unchecked(
                            seq.clone(),
                            ranked.rule.clone(),
                            vec![sub],
                        ));
                    }
                }
            }
        }
    }

    // 7. record failure — but never while aborting, which would poison the
    //    shared memo with states that merely ran out of the state budget
    //    (or were cancelled by a winning sibling branch)
    if !st.aborted {
        st.caches
            .memo
            .merge(key, risky_budget, |cur, new| *cur = (*cur).max(new));
    }
    None
}

/// Stack size for parallel branch workers: each explores a full saturation
/// subtree, so it needs the same deep-recursion stack as the session workers.
const BRANCH_STACK: usize = 256 * 1024 * 1024;

/// One parallel branch's input (moved onto its worker) and outcome.
/// Cloning is O(1)-ish (shared formulas and Arc-backed move lists), which
/// the spawn-failure fallback relies on.
#[derive(Clone)]
struct BranchInput {
    rule: Rule,
    premise: Sequent,
    moves: Moves,
    used: UsedSpecs,
}

struct BranchOutcome {
    proof: Option<Proof>,
    rule: Rule,
    visited_delta: usize,
    memo_hits: usize,
    memo_misses: usize,
    rewrite_hits: usize,
    rewrite_misses: usize,
    occ_pairs: usize,
    occ_pruned: usize,
    branches_dispatched: usize,
    move_seqno: usize,
    budget_aborted: bool,
    /// The branch hit the wall-clock deadline: the whole search must stop
    /// and report a timeout (unless a lower-indexed branch already proved).
    timed_out: bool,
    /// The branch observed the session's cancellation token.
    ext_cancelled: bool,
}

/// Explore the applicable risky candidates of a top-level choice point on
/// concurrent big-stack workers sharing the session caches.  Selection is
/// deterministic: outcomes are scanned in candidate order and the first
/// success wins (higher-indexed branches are cancelled once a lower one
/// succeeds — their discarded results can't influence anything), so the
/// returned proof is exactly the sequential scan's.  A branch that ran out
/// of state budget *before* any lower-indexed success aborts the whole
/// search, as the sequential scan would have.
#[allow(clippy::too_many_arguments)]
fn parallel_risky(
    seq: &Sequent,
    moves: &Moves,
    applicable: &[&RankedRule],
    risky_budget: usize,
    rewrites_used: usize,
    used: &UsedSpecs,
    safe_dead_prefix: DeadCounts,
    st: &mut State,
) -> Option<Proof> {
    // Build every branch's premise and inherited candidate list up front
    // (deterministic sequence numbers: the generation step happens on the
    // parent, in candidate order — each branch's new candidates still rank
    // after everything it inherits).
    let mut inputs = Vec::with_capacity(applicable.len());
    for ranked in applicable {
        let mut premises = ranked.rule.premises_unchecked(seq);
        let premise = premises.swap_remove(0);
        let extended_used = extend_used(used, &ranked.rule);
        let delta = [added_formula(&ranked.rule)];
        let inherited = child_moves(
            &premise,
            moves,
            &delta,
            safe_dead_prefix,
            &extended_used,
            st,
        );
        inputs.push(BranchInput {
            rule: ranked.rule.clone(),
            premise,
            moves: inherited,
            used: extended_used,
        });
    }
    st.branches_dispatched += inputs.len();
    let winner = AtomicUsize::new(usize::MAX);
    let cfg = st.cfg;
    let caches = st.caches;
    let trace = st.trace;
    let visited0 = st.visited;
    let seqno0 = st.move_seqno;
    let deadline0 = st.deadline;
    let ext_cancel0 = st.ext_cancel;
    let run = move |input: BranchInput, index: usize, winner: &AtomicUsize| -> BranchOutcome {
        let mut bst = State {
            cfg,
            visited: visited0,
            aborted: false,
            cancelled: false,
            deadline: deadline0,
            timed_out: false,
            ext_cancel: ext_cancel0,
            ext_cancelled: false,
            trace,
            caches,
            memo_hits: 0,
            memo_misses: 0,
            rewrite_hits: 0,
            rewrite_misses: 0,
            occ_pairs: 0,
            occ_pruned: 0,
            branches_dispatched: 0,
            move_seqno: seqno0,
            // a risky move was just taken, so no descendant state of this
            // branch is top-level — parallel dispatch never nests
            level: usize::MAX,
            cancel: Some((winner, index)),
        };
        let proof = attempt(
            &input.premise,
            risky_budget - 1,
            rewrites_used,
            &input.used,
            Some(input.moves),
            &mut bst,
        );
        if proof.is_some() {
            winner.fetch_min(index, Ordering::SeqCst);
        }
        BranchOutcome {
            proof,
            rule: input.rule,
            visited_delta: bst.visited - visited0,
            memo_hits: bst.memo_hits,
            memo_misses: bst.memo_misses,
            rewrite_hits: bst.rewrite_hits,
            rewrite_misses: bst.rewrite_misses,
            occ_pairs: bst.occ_pairs,
            occ_pruned: bst.occ_pruned,
            branches_dispatched: bst.branches_dispatched,
            move_seqno: bst.move_seqno,
            budget_aborted: bst.aborted && !bst.cancelled && !bst.timed_out && !bst.ext_cancelled,
            timed_out: bst.timed_out,
            ext_cancelled: bst.ext_cancelled,
        }
    };
    let outcomes: Vec<BranchOutcome> = std::thread::scope(|scope| {
        enum Pending<'h, T> {
            Spawned(std::thread::ScopedJoinHandle<'h, T>),
            Inline(T),
        }
        let mut pending = Vec::with_capacity(inputs.len());
        for (index, input) in inputs.into_iter().enumerate() {
            let winner = &winner;
            let run = &run;
            let spawn_input = input.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("nrs-branch-{index}"))
                .stack_size(BRANCH_STACK)
                .spawn_scoped(scope, move || run(spawn_input, index, winner));
            match spawned {
                Ok(handle) => pending.push(Pending::Spawned(handle)),
                // can't get a thread: run the branch on this one (the
                // cancellation token still applies)
                Err(_) => pending.push(Pending::Inline(run(input, index, winner))),
            }
        }
        pending
            .into_iter()
            .map(|p| match p {
                Pending::Spawned(handle) => match handle.join() {
                    Ok(outcome) => outcome,
                    Err(panic) => std::panic::resume_unwind(panic),
                },
                Pending::Inline(outcome) => outcome,
            })
            .collect()
    });
    for outcome in &outcomes {
        st.visited += outcome.visited_delta;
        st.memo_hits += outcome.memo_hits;
        st.memo_misses += outcome.memo_misses;
        st.rewrite_hits += outcome.rewrite_hits;
        st.rewrite_misses += outcome.rewrite_misses;
        st.occ_pairs += outcome.occ_pairs;
        st.occ_pruned += outcome.occ_pruned;
        st.branches_dispatched += outcome.branches_dispatched;
        st.move_seqno = st.move_seqno.max(outcome.move_seqno);
    }
    for outcome in outcomes {
        // transient aborts stop the search the way the sequential scan
        // would have: a lower-indexed proof still wins (it was found before
        // the scan could have reached the aborting candidate), everything
        // after the abort is moot
        if outcome.budget_aborted {
            st.aborted = true;
            return None;
        }
        if outcome.timed_out {
            st.aborted = true;
            st.timed_out = true;
            return None;
        }
        if outcome.ext_cancelled {
            st.aborted = true;
            st.ext_cancelled = true;
            return None;
        }
        if let Some(sub) = outcome.proof {
            return Some(Proof::by_unchecked(seq.clone(), outcome.rule, vec![sub]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrs_delta0::entail::{check_sequent_bounded, BoundedCheck};
    use nrs_delta0::macros as d0;
    use nrs_delta0::typing::TypeEnv;
    use nrs_delta0::MemAtom;
    use nrs_delta0::Term;
    use nrs_proof::check_proof;
    use nrs_value::{Name, NameGen, Type};

    fn cfg() -> ProverConfig {
        ProverConfig::default()
    }

    #[test]
    fn proves_propositional_tautologies() {
        // ⊢ x = y ∨ x ≠ y   (excluded middle for Ur equality)
        let goal = Formula::or(Formula::eq_ur("x", "y"), Formula::neq_ur("x", "y"));
        let (proof, stats) = prove(&InContext::new(), &[], &[goal], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());
        assert_eq!(stats.risky_level, 0);

        // ⊤ and reflexivity
        let (p2, _) = prove(&InContext::new(), &[], &[Formula::True], &cfg()).unwrap();
        assert!(check_proof(&p2).is_ok());
        let (p3, _) = prove(&InContext::new(), &[], &[Formula::eq_ur("a", "a")], &cfg()).unwrap();
        assert!(check_proof(&p3).is_ok());
    }

    #[test]
    fn rejects_invalid_goals() {
        // ⊢ x = y is not valid
        let out = prove(
            &InContext::new(),
            &[],
            &[Formula::eq_ur("x", "y")],
            &ProverConfig::quick(),
        );
        assert!(out.is_err());
        // ⊢ ⊥ is not valid
        let out = prove(
            &InContext::new(),
            &[],
            &[Formula::False],
            &ProverConfig::quick(),
        );
        assert!(out.is_err());
    }

    #[test]
    fn equality_reasoning_via_congruence() {
        // x = y, y = z ⊢ x = z   (two-sided: assumptions on the left)
        let assumptions = [Formula::eq_ur("x", "y"), Formula::eq_ur("y", "z")];
        let goal = Formula::eq_ur("x", "z");
        let (proof, _) = prove(&InContext::new(), &assumptions, &[goal], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());
        // symmetry
        let (proof, _) = prove(
            &InContext::new(),
            &[Formula::eq_ur("x", "y")],
            &[Formula::eq_ur("y", "x")],
            &cfg(),
        )
        .unwrap();
        assert!(check_proof(&proof).is_ok());
    }

    #[test]
    fn bounded_quantifier_reasoning() {
        // x ∈ S ⊢ ∃z ∈ S . z = x
        let ctx = InContext::from_atoms([MemAtom::new("x", "S")]);
        let goal = Formula::exists("z", "S", Formula::eq_ur("z", "x"));
        let (proof, _) = prove(&ctx, &[], &[goal], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());

        // ∀-introduction: ⊢ ∀z ∈ S . z = z
        let goal = Formula::forall("z", "S", Formula::eq_ur("z", "z"));
        let (proof, _) = prove(&InContext::new(), &[], &[goal], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());

        // the paper's primitive-membership example:
        // x ∈ y, x ∈ y' ⊢ ∃z ∈ y . z ∈ y'
        let ctx = InContext::from_atoms([MemAtom::new("x", "y"), MemAtom::new("x", "y2")]);
        let goal = Formula::exists("z", "y", Formula::mem("z", "y2"));
        // the goal uses a primitive membership, which cannot be closed by the
        // Δ0 rules (there is no membership axiom); instead prove the ∈̂ variant
        let mut gen = NameGen::new();
        let goal_hat = Formula::exists(
            "z",
            "y",
            d0::member_hat(&Type::Ur, &Term::var("z"), &Term::var("y2"), &mut gen),
        );
        let _ = goal; // the primitive variant is exercised in the entailment tests
        let (proof, _) = prove(&ctx, &[], &[goal_hat], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());
    }

    #[test]
    fn subset_transitivity_over_sets_of_atoms() {
        // A ⊆ B, B ⊆ C ⊢ A ⊆ C   where ⊆ is the Δ0 macro
        let mut gen = NameGen::new();
        let ab = d0::subset(&Type::Ur, &Term::var("A"), &Term::var("B"), &mut gen);
        let bc = d0::subset(&Type::Ur, &Term::var("B"), &Term::var("C"), &mut gen);
        let ac = d0::subset(&Type::Ur, &Term::var("A"), &Term::var("C"), &mut gen);
        let (proof, _) = prove(&InContext::new(), &[ab, bc], &[ac], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());
    }

    #[test]
    fn proves_a_small_view_determinacy_goal_and_result_is_semantically_valid() {
        // Views V1 = {x ∈ S | x ∈̂ F}, V2 = {x ∈ S | ¬(x ∈̂ F)} determine S: S ≡ V1 ∪ V2,
        // stated as implicit definability of S from V1, V2 relative to the specs.
        // Here we prove a core piece: the two view specs entail S ⊆ "V1 ∪ V2",
        // expressed without ∪ as  ∀x ∈ S. x ∈̂ V1 ∨ x ∈̂ V2.
        let mut gen = NameGen::new();
        let ur = Type::Ur;
        let in_f =
            |x: &str, g: &mut NameGen| d0::member_hat(&ur, &Term::var(x), &Term::var("F"), g);
        // soundness+completeness specs for V1 and V2 (only the directions needed)
        let v1_complete = Formula::forall(
            "x",
            "S",
            d0::implies(
                in_f("x", &mut gen),
                d0::member_hat(&ur, &Term::var("x"), &Term::var("V1"), &mut gen),
            ),
        );
        let v2_complete = Formula::forall(
            "x",
            "S",
            d0::implies(
                in_f("x", &mut gen).negate(),
                d0::member_hat(&ur, &Term::var("x"), &Term::var("V2"), &mut gen),
            ),
        );
        let goal = Formula::forall(
            "x",
            "S",
            Formula::or(
                d0::member_hat(&ur, &Term::var("x"), &Term::var("V1"), &mut gen),
                d0::member_hat(&ur, &Term::var("x"), &Term::var("V2"), &mut gen),
            ),
        );
        let (proof, _) = prove(
            &InContext::new(),
            &[v1_complete.clone(), v2_complete.clone()],
            std::slice::from_ref(&goal),
            &cfg(),
        )
        .unwrap();
        assert!(check_proof(&proof).is_ok());
        // cross-check the sequent semantically on a small universe
        let env = TypeEnv::from_pairs([
            (Name::new("S"), Type::set(Type::Ur)),
            (Name::new("F"), Type::set(Type::Ur)),
            (Name::new("V1"), Type::set(Type::Ur)),
            (Name::new("V2"), Type::set(Type::Ur)),
        ]);
        let out = check_sequent_bounded(
            &InContext::new(),
            &[v1_complete, v2_complete],
            &[goal],
            &env,
            &BoundedCheck {
                universe: 2,
                max_models: 2_000_000,
            },
        )
        .unwrap();
        assert!(out.is_valid());
    }

    #[test]
    fn unprovable_quantified_goal_fails_quickly() {
        // x ∈ S ⊢ ∀z ∈ S . z = x   is invalid
        let ctx = InContext::from_atoms([MemAtom::new("x", "S")]);
        let goal = Formula::forall("z", "S", Formula::eq_ur("z", "x"));
        assert!(prove(&ctx, &[], &[goal], &ProverConfig::quick()).is_err());
    }

    #[test]
    fn stats_are_reported() {
        let goal = Formula::or(Formula::eq_ur("x", "y"), Formula::neq_ur("x", "y"));
        let (_, stats) = prove(&InContext::new(), &[], &[goal], &cfg()).unwrap();
        assert!(stats.visited >= 1);
        assert!(stats.proof_size >= 2);
        // a quantified goal over structured terms makes the search construct
        // (hence intern) the instantiated bodies
        let goal = Formula::forall(
            "z",
            "S",
            Formula::eq_ur(Term::proj1(Term::var("z")), Term::proj1(Term::var("z"))),
        );
        let (_, stats) = prove(&InContext::new(), &[], &[goal], &cfg()).unwrap();
        assert!(stats.interner_hits + stats.interner_misses > 0);
    }

    #[test]
    fn deadlines_report_timeout_distinct_from_budget_exhaustion() {
        // an unprovable goal: both configurations give up, for different reasons
        let ctx = InContext::from_atoms([MemAtom::new("x", "S")]);
        let goal = Formula::forall("z", "S", Formula::eq_ur("z", "x"));
        let seq = Sequent::two_sided(ctx, [], [goal]);
        // a zero deadline fires at the very first state visit
        let session = ProverSession::new(ProverConfig {
            deadline: Some(std::time::Duration::ZERO),
            ..ProverConfig::quick()
        });
        let err = session.prove_sequent(&seq).unwrap_err();
        assert!(err.is_timeout(), "expected Timeout, got {err:?}");
        assert_eq!(
            session.goal_cache_len(),
            0,
            "timeouts must never enter the goal-outcome cache"
        );
        // the same goal without a deadline exhausts its budgets instead —
        // a stable verdict, which the session does remember
        let session = ProverSession::new(ProverConfig::quick());
        let err = session.prove_sequent(&seq).unwrap_err();
        assert!(
            matches!(err, ProofError::BudgetExhausted(_)),
            "expected BudgetExhausted, got {err:?}"
        );
        assert_eq!(session.goal_cache_len(), 1);
        let replayed = session.prove_sequent(&seq).unwrap_err();
        assert!(matches!(replayed, ProofError::BudgetExhausted(_)));
    }

    #[test]
    fn cancelled_sessions_refuse_goals_until_reset() {
        let session = ProverSession::new(ProverConfig::quick());
        let seq = Sequent::goals([Formula::True]);
        session.cancel();
        assert!(session.is_cancelled());
        let err = session.prove_sequent(&seq).unwrap_err();
        assert!(matches!(err, ProofError::Cancelled), "got {err:?}");
        assert_eq!(session.goal_cache_len(), 0, "cancellations are not cached");
        session.reset_cancel();
        assert!(session.prove_sequent(&seq).is_ok());
    }

    #[test]
    fn used_specs_behave_as_a_persistent_set() {
        let a = Formula::eq_ur("x", "y");
        let b = Formula::eq_ur("u", "v");
        let base = UsedSpecs::default();
        let one = base.push(a.clone());
        let two = one.push(b.clone());
        assert!(!base.contains(&a));
        assert!(one.contains(&a) && !one.contains(&b));
        assert!(two.contains(&a) && two.contains(&b));
        // pushes share the tail; hashes are order-independent
        let two_rev = base.push(b).push(a);
        assert_eq!(two.hash, two_rev.hash);
        assert_ne!(two.hash, one.hash);
    }
}
