//! The search engine: saturation of safe moves + iterative deepening over
//! risky (case-splitting) instantiations.

use nrs_delta0::specialize::max_specializations;
use nrs_delta0::{Formula, InContext};
use nrs_proof::{Proof, ProofError, Rule, Sequent};
use nrs_value::NameGen;
use std::collections::{BTreeSet, HashMap};

/// Budgets controlling the proof search.
#[derive(Debug, Clone)]
pub struct ProverConfig {
    /// Maximum number of "risky" (conjunction-introducing) ∃ instantiations
    /// along any branch; iterative deepening explores 0..=max_risky.
    pub max_risky: usize,
    /// Cap on the number of formulas in a sequent before safe saturation stops.
    pub max_formulas: usize,
    /// Cap on ≠-congruence rewrites along a branch.
    pub max_rewrites: usize,
    /// Cap on candidate specializations enumerated per existential formula.
    pub spec_limit: usize,
    /// Global cap on visited search states.
    pub max_states: usize,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            max_risky: 6,
            max_formulas: 220,
            max_rewrites: 48,
            spec_limit: 64,
            max_states: 400_000,
        }
    }
}

impl ProverConfig {
    /// A configuration with small budgets, for quick validity checks in tests.
    pub fn quick() -> Self {
        ProverConfig {
            max_risky: 3,
            max_formulas: 90,
            max_rewrites: 24,
            spec_limit: 32,
            max_states: 40_000,
        }
    }

    /// A configuration with generous budgets for the harder example goals.
    pub fn thorough() -> Self {
        ProverConfig {
            max_risky: 10,
            max_formulas: 420,
            max_rewrites: 96,
            spec_limit: 128,
            max_states: 4_000_000,
        }
    }
}

/// Statistics reported alongside a successful proof.
#[derive(Debug, Clone, Default)]
pub struct ProverStats {
    /// Number of search states visited.
    pub visited: usize,
    /// Risky budget at which the proof was found.
    pub risky_level: usize,
    /// Size (node count) of the returned proof.
    pub proof_size: usize,
}

struct State {
    cfg: ProverConfig,
    gen: NameGen,
    visited: usize,
    aborted: bool,
    /// sequents known to fail with a risky budget ≥ the stored value
    failed: HashMap<Sequent, usize>,
}

/// Prove `Θ ; ⊢ Δ` (one-sided), returning a checked proof object.
///
/// The search recursion can get deep (one stack frame per saturation step),
/// so the search runs on a dedicated thread with a large stack; callers see an
/// ordinary synchronous function.
pub fn prove_sequent(
    sequent: &Sequent,
    cfg: &ProverConfig,
) -> Result<(Proof, ProverStats), ProofError> {
    let sequent = sequent.clone();
    let cfg = cfg.clone();
    let handle = std::thread::Builder::new()
        .name("nrs-prover-search".into())
        .stack_size(256 * 1024 * 1024)
        .spawn(move || prove_sequent_inner(&sequent, &cfg))
        .map_err(|e| ProofError::SearchFailed(format!("could not spawn search thread: {e}")))?;
    handle
        .join()
        .map_err(|_| ProofError::SearchFailed("proof search thread panicked".into()))?
}

fn prove_sequent_inner(
    sequent: &Sequent,
    cfg: &ProverConfig,
) -> Result<(Proof, ProverStats), ProofError> {
    let mut st = State {
        cfg: cfg.clone(),
        gen: NameGen::avoiding(sequent.free_vars().iter()),
        visited: 0,
        aborted: false,
        failed: HashMap::new(),
    };
    for level in 0..=cfg.max_risky {
        st.aborted = false;
        let used = BTreeSet::new();
        if let Some(proof) = attempt(sequent, level, 0, &used, &mut st) {
            let stats = ProverStats {
                visited: st.visited,
                risky_level: level,
                proof_size: proof.size(),
            };
            return Ok((proof, stats));
        }
        if st.visited >= cfg.max_states {
            break;
        }
    }
    Err(ProofError::SearchFailed(format!(
        "no proof found within budgets (visited {} states, max risky {})",
        st.visited, cfg.max_risky
    )))
}

/// Convenience wrapper: prove that `assumptions` entail one of `goals` under
/// the membership context `ctx` (a two-sided sequent `Θ; Γ ⊢ Δ`).
pub fn prove(
    ctx: &InContext,
    assumptions: &[Formula],
    goals: &[Formula],
    cfg: &ProverConfig,
) -> Result<(Proof, ProverStats), ProofError> {
    let seq = Sequent::two_sided(
        ctx.clone(),
        assumptions.iter().cloned(),
        goals.iter().cloned(),
    );
    prove_sequent(&seq, cfg)
}

/// Does the formula contain a conjunction anywhere?  Specializations with
/// conjunctions force case splits when decomposed, so they are the "risky"
/// moves explored with backtracking.
fn contains_and(f: &Formula) -> bool {
    match f {
        Formula::And(_, _) => true,
        Formula::Or(a, b) => contains_and(a) || contains_and(b),
        Formula::Forall { body, .. } | Formula::Exists { body, .. } => contains_and(body),
        _ => false,
    }
}

/// Remember that a specialization has been introduced along the current branch
/// (it may later disappear from the right-hand side when the invertible phase
/// decomposes it, and must not be re-introduced, which would loop forever).
fn extend_used(used: &BTreeSet<Formula>, rule: &Rule) -> BTreeSet<Formula> {
    match rule {
        Rule::Exists { spec, .. } => {
            let mut out = used.clone();
            out.insert(spec.clone());
            out
        }
        _ => used.clone(),
    }
}

fn find_axiom(seq: &Sequent) -> Option<Rule> {
    for f in seq.rhs() {
        match f {
            Formula::True => return Some(Rule::Top),
            Formula::EqUr(t, u) if t == u => return Some(Rule::EqRefl { term: t.clone() }),
            _ => {}
        }
    }
    None
}

/// The first alternative-leading non-atomic formula, if any (these are
/// decomposed eagerly since the corresponding rules are invertible).
fn find_invertible(seq: &Sequent) -> Option<Formula> {
    seq.rhs()
        .iter()
        .find(|f| {
            matches!(
                f,
                Formula::And(_, _) | Formula::Or(_, _) | Formula::Forall { .. }
            )
        })
        .cloned()
}

fn attempt(
    seq: &Sequent,
    risky_budget: usize,
    rewrites_used: usize,
    used: &BTreeSet<Formula>,
    st: &mut State,
) -> Option<Proof> {
    if st.aborted {
        return None;
    }
    if std::env::var_os("NRS_PROVER_TRACE").is_some() {
        eprintln!(
            "[{} / r{} w{}] {}",
            st.visited, risky_budget, rewrites_used, seq
        );
    }
    st.visited += 1;
    if st.visited >= st.cfg.max_states {
        st.aborted = true;
        return None;
    }

    // 1. axioms
    if let Some(rule) = find_axiom(seq) {
        return Proof::by(seq.clone(), rule, vec![]).ok();
    }

    // 2. invertible decomposition
    if let Some(f) = find_invertible(seq) {
        let rule = match &f {
            Formula::And(_, _) => Rule::And { conj: f.clone() },
            Formula::Or(_, _) => Rule::Or { disj: f.clone() },
            Formula::Forall { .. } => Rule::Forall {
                quant: f.clone(),
                witness: st.gen.fresh("ev"),
            },
            _ => unreachable!(),
        };
        let premises = rule.premises(seq).ok()?;
        let mut sub = Vec::with_capacity(premises.len());
        for p in &premises {
            sub.push(attempt(p, risky_budget, rewrites_used, used, st)?);
        }
        return Proof::by(seq.clone(), rule, sub).ok();
    }

    // 3. memoized failure?
    if let Some(&known) = st.failed.get(seq) {
        if risky_budget <= known {
            return None;
        }
    }

    // 4. collect candidate moves (the right-hand side is now all EL)
    let mut closing: Vec<Rule> = Vec::new();
    let mut safe_specs: Vec<Rule> = Vec::new();
    let mut safe_rewrites: Vec<Rule> = Vec::new();
    let mut noisy_rewrites: Vec<Rule> = Vec::new();
    let mut risky: Vec<Rule> = Vec::new();
    let room = seq.rhs().len() < st.cfg.max_formulas;

    // ≠-congruence rewrites: prioritize ones that immediately close the goal.
    if room && rewrites_used < st.cfg.max_rewrites {
        for ineq in seq.rhs() {
            let (t, u) = match ineq {
                Formula::NeqUr(t, u) if t != u => (t, u),
                _ => continue,
            };
            for atom in seq.rhs() {
                // Rewriting equality atoms is how positive equational reasoning
                // happens in the one-sided calculus; rewriting inequality atoms
                // composes equations and is occasionally needed, but mostly
                // generates noise, so it is tried last.
                if !matches!(atom, Formula::EqUr(_, _) | Formula::NeqUr(_, _)) {
                    continue;
                }
                let rewritten = atom.replace_term(t, u);
                if &rewritten == atom
                    || seq.contains(&rewritten)
                    || matches!(&rewritten, Formula::NeqUr(a, b) if a == b)
                {
                    continue;
                }
                let rule = Rule::Neq {
                    ineq: ineq.clone(),
                    atom: atom.clone(),
                    rewritten: rewritten.clone(),
                };
                let closes = matches!(&rewritten, Formula::EqUr(a, b) if a == b);
                if closes {
                    closing.push(rule);
                } else if matches!(atom, Formula::EqUr(_, _)) {
                    safe_rewrites.push(rule);
                } else {
                    noisy_rewrites.push(rule);
                }
            }
        }
    }

    // ∃ specializations
    if room {
        for quant in seq.rhs() {
            if !matches!(quant, Formula::Exists { .. }) {
                continue;
            }
            for ms in max_specializations(quant, &seq.ctx, st.cfg.spec_limit) {
                if ms.used.is_empty() || seq.contains(&ms.result) || used.contains(&ms.result) {
                    continue;
                }
                let rule = Rule::Exists {
                    quant: quant.clone(),
                    spec: ms.result.clone(),
                };
                if contains_and(&ms.result) {
                    risky.push(rule);
                } else {
                    safe_specs.push(rule);
                }
            }
        }
    }

    // Rank the safe moves: closing rewrites first, then small (atomic)
    // specializations, then equality rewrites, then specializations that spawn
    // fresh universals, and finally the noisy inequality rewrites.  Large
    // specializations last is essential: they generate new eigenvariables and
    // can otherwise starve the finishing moves.
    let cost = |r: &Rule| -> usize {
        match r {
            Rule::Neq {
                rewritten, atom, ..
            } => {
                if matches!(rewritten, Formula::EqUr(a, b) if a == b) {
                    0
                } else if matches!(atom, Formula::EqUr(_, _)) {
                    6
                } else {
                    1000
                }
            }
            Rule::Exists { spec, .. } => 2 + spec.size(),
            _ => 500,
        }
    };
    let mut safe: Vec<Rule> = closing
        .into_iter()
        .chain(safe_specs)
        .chain(safe_rewrites)
        .chain(noisy_rewrites)
        .collect();
    safe.sort_by_key(cost);

    // 5. apply the first safe move (saturation proceeds one deterministic step
    //    at a time; the recursive call will pick up the remaining moves).
    for rule in safe {
        let rewrites = rewrites_used + usize::from(matches!(rule, Rule::Neq { .. }));
        let Ok(premises) = rule.premises(seq) else {
            continue;
        };
        let extended_used = extend_used(used, &rule);
        if let Some(sub) = attempt(&premises[0], risky_budget, rewrites, &extended_used, st) {
            return Proof::by(seq.clone(), rule, vec![sub]).ok();
        }
        // a safe move never needs alternatives: it only adds information, so if
        // the extended sequent is unprovable within budget, so is this one.
        break;
    }

    // 6. risky moves with backtracking
    if risky_budget > 0 {
        // smaller specializations first: they tend to be goal instantiations
        risky.sort_by_key(|r| match r {
            Rule::Exists { spec, .. } => spec.size(),
            _ => usize::MAX,
        });
        for rule in risky {
            if st.aborted {
                return None;
            }
            let Ok(premises) = rule.premises(seq) else {
                continue;
            };
            let extended_used = extend_used(used, &rule);
            if let Some(sub) = attempt(
                &premises[0],
                risky_budget - 1,
                rewrites_used,
                &extended_used,
                st,
            ) {
                return Proof::by(seq.clone(), rule, vec![sub]).ok();
            }
        }
    }

    // 7. record failure
    let entry = st.failed.entry(seq.clone()).or_insert(0);
    *entry = (*entry).max(risky_budget);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrs_delta0::entail::{check_sequent_bounded, BoundedCheck};
    use nrs_delta0::macros as d0;
    use nrs_delta0::typing::TypeEnv;
    use nrs_delta0::MemAtom;
    use nrs_delta0::Term;
    use nrs_proof::check_proof;
    use nrs_value::{Name, Type};

    fn cfg() -> ProverConfig {
        ProverConfig::default()
    }

    #[test]
    fn proves_propositional_tautologies() {
        // ⊢ x = y ∨ x ≠ y   (excluded middle for Ur equality)
        let goal = Formula::or(Formula::eq_ur("x", "y"), Formula::neq_ur("x", "y"));
        let (proof, stats) = prove(&InContext::new(), &[], &[goal], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());
        assert_eq!(stats.risky_level, 0);

        // ⊤ and reflexivity
        let (p2, _) = prove(&InContext::new(), &[], &[Formula::True], &cfg()).unwrap();
        assert!(check_proof(&p2).is_ok());
        let (p3, _) = prove(&InContext::new(), &[], &[Formula::eq_ur("a", "a")], &cfg()).unwrap();
        assert!(check_proof(&p3).is_ok());
    }

    #[test]
    fn rejects_invalid_goals() {
        // ⊢ x = y is not valid
        let out = prove(
            &InContext::new(),
            &[],
            &[Formula::eq_ur("x", "y")],
            &ProverConfig::quick(),
        );
        assert!(out.is_err());
        // ⊢ ⊥ is not valid
        let out = prove(
            &InContext::new(),
            &[],
            &[Formula::False],
            &ProverConfig::quick(),
        );
        assert!(out.is_err());
    }

    #[test]
    fn equality_reasoning_via_congruence() {
        // x = y, y = z ⊢ x = z   (two-sided: assumptions on the left)
        let assumptions = [Formula::eq_ur("x", "y"), Formula::eq_ur("y", "z")];
        let goal = Formula::eq_ur("x", "z");
        let (proof, _) = prove(&InContext::new(), &assumptions, &[goal], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());
        // symmetry
        let (proof, _) = prove(
            &InContext::new(),
            &[Formula::eq_ur("x", "y")],
            &[Formula::eq_ur("y", "x")],
            &cfg(),
        )
        .unwrap();
        assert!(check_proof(&proof).is_ok());
    }

    #[test]
    fn bounded_quantifier_reasoning() {
        // x ∈ S ⊢ ∃z ∈ S . z = x
        let ctx = InContext::from_atoms([MemAtom::new("x", "S")]);
        let goal = Formula::exists("z", "S", Formula::eq_ur("z", "x"));
        let (proof, _) = prove(&ctx, &[], &[goal], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());

        // ∀-introduction: ⊢ ∀z ∈ S . z = z
        let goal = Formula::forall("z", "S", Formula::eq_ur("z", "z"));
        let (proof, _) = prove(&InContext::new(), &[], &[goal], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());

        // the paper's primitive-membership example:
        // x ∈ y, x ∈ y' ⊢ ∃z ∈ y . z ∈ y'
        let ctx = InContext::from_atoms([MemAtom::new("x", "y"), MemAtom::new("x", "y2")]);
        let goal = Formula::exists("z", "y", Formula::mem("z", "y2"));
        // the goal uses a primitive membership, which cannot be closed by the
        // Δ0 rules (there is no membership axiom); instead prove the ∈̂ variant
        let mut gen = NameGen::new();
        let goal_hat = Formula::exists(
            "z",
            "y",
            d0::member_hat(&Type::Ur, &Term::var("z"), &Term::var("y2"), &mut gen),
        );
        let _ = goal; // the primitive variant is exercised in the entailment tests
        let (proof, _) = prove(&ctx, &[], &[goal_hat], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());
    }

    #[test]
    fn subset_transitivity_over_sets_of_atoms() {
        // A ⊆ B, B ⊆ C ⊢ A ⊆ C   where ⊆ is the Δ0 macro
        let mut gen = NameGen::new();
        let ab = d0::subset(&Type::Ur, &Term::var("A"), &Term::var("B"), &mut gen);
        let bc = d0::subset(&Type::Ur, &Term::var("B"), &Term::var("C"), &mut gen);
        let ac = d0::subset(&Type::Ur, &Term::var("A"), &Term::var("C"), &mut gen);
        let (proof, _) = prove(&InContext::new(), &[ab, bc], &[ac], &cfg()).unwrap();
        assert!(check_proof(&proof).is_ok());
    }

    #[test]
    fn proves_a_small_view_determinacy_goal_and_result_is_semantically_valid() {
        // Views V1 = {x ∈ S | x ∈̂ F}, V2 = {x ∈ S | ¬(x ∈̂ F)} determine S: S ≡ V1 ∪ V2,
        // stated as implicit definability of S from V1, V2 relative to the specs.
        // Here we prove a core piece: the two view specs entail S ⊆ "V1 ∪ V2",
        // expressed without ∪ as  ∀x ∈ S. x ∈̂ V1 ∨ x ∈̂ V2.
        let mut gen = NameGen::new();
        let ur = Type::Ur;
        let in_f =
            |x: &str, g: &mut NameGen| d0::member_hat(&ur, &Term::var(x), &Term::var("F"), g);
        // soundness+completeness specs for V1 and V2 (only the directions needed)
        let v1_complete = Formula::forall(
            "x",
            "S",
            d0::implies(
                in_f("x", &mut gen),
                d0::member_hat(&ur, &Term::var("x"), &Term::var("V1"), &mut gen),
            ),
        );
        let v2_complete = Formula::forall(
            "x",
            "S",
            d0::implies(
                in_f("x", &mut gen).negate(),
                d0::member_hat(&ur, &Term::var("x"), &Term::var("V2"), &mut gen),
            ),
        );
        let goal = Formula::forall(
            "x",
            "S",
            Formula::or(
                d0::member_hat(&ur, &Term::var("x"), &Term::var("V1"), &mut gen),
                d0::member_hat(&ur, &Term::var("x"), &Term::var("V2"), &mut gen),
            ),
        );
        let (proof, _) = prove(
            &InContext::new(),
            &[v1_complete.clone(), v2_complete.clone()],
            std::slice::from_ref(&goal),
            &cfg(),
        )
        .unwrap();
        assert!(check_proof(&proof).is_ok());
        // cross-check the sequent semantically on a small universe
        let env = TypeEnv::from_pairs([
            (Name::new("S"), Type::set(Type::Ur)),
            (Name::new("F"), Type::set(Type::Ur)),
            (Name::new("V1"), Type::set(Type::Ur)),
            (Name::new("V2"), Type::set(Type::Ur)),
        ]);
        let out = check_sequent_bounded(
            &InContext::new(),
            &[v1_complete, v2_complete],
            &[goal],
            &env,
            &BoundedCheck {
                universe: 2,
                max_models: 2_000_000,
            },
        )
        .unwrap();
        assert!(out.is_valid());
    }

    #[test]
    fn unprovable_quantified_goal_fails_quickly() {
        // x ∈ S ⊢ ∀z ∈ S . z = x   is invalid
        let ctx = InContext::from_atoms([MemAtom::new("x", "S")]);
        let goal = Formula::forall("z", "S", Formula::eq_ur("z", "x"));
        assert!(prove(&ctx, &[], &[goal], &ProverConfig::quick()).is_err());
    }

    #[test]
    fn stats_are_reported() {
        let goal = Formula::or(Formula::eq_ur("x", "y"), Formula::neq_ur("x", "y"));
        let (_, stats) = prove(&InContext::new(), &[], &[goal], &cfg()).unwrap();
        assert!(stats.visited >= 1);
        assert!(stats.proof_size >= 2);
    }
}
