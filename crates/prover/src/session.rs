//! Reusable prover sessions.
//!
//! [`ProverSession`] owns everything worth keeping *between* proof-search
//! calls of one synthesis run:
//!
//! * the **failure memo** — sequents refuted while proving one goal prune the
//!   search for every later goal (and every later deepening level);
//! * one or more **long-lived worker threads** with the large stack the deep
//!   saturation recursion needs, so each `prove_sequent` call stops paying a
//!   256 MiB-stack thread spawn;
//! * the configuration, fixed at construction — memo entries are only valid
//!   for the budgets they were recorded under, so a session proves every goal
//!   with the same [`ProverConfig`].
//!
//! Sessions are `Sync`: independent goals may call [`prove_sequent`] from
//! several threads (e.g. `std::thread::scope` in `nrs-core`), in which case
//! idle workers are reused and extra workers are spawned on demand, all
//! sharing the memo behind a mutex.
//!
//! [`prove_sequent`]: ProverSession::prove_sequent

use crate::search::{prove_sequent_inner, ProverConfig, ProverStats, SearchCaches};
use nrs_delta0::{Formula, InContext};
use nrs_proof::{Proof, ProofError, Sequent};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};

/// Stack size for search workers: the saturation recursion uses one stack
/// frame per proof step, which can run deep on the synthesis goals.
const WORKER_STACK: usize = 256 * 1024 * 1024;

/// A unit of worker work: one or more sequents proved back-to-back on the
/// same worker.  Batches are how `nrs-synthesis` ships all per-depth goals
/// of one run in a single call — one dispatch, one warm walk over the
/// session's memo and specialization cache.
struct Job {
    seqs: Vec<Sequent>,
    reply: Sender<Vec<Result<(Proof, ProverStats), ProofError>>>,
}

struct SessionInner {
    cfg: ProverConfig,
    /// The session-lifetime caches (failure memo, specialization cache,
    /// rewrite-candidate cache), each a sharded concurrent map so parallel
    /// workers and branch threads don't serialize on probes.
    caches: SearchCaches,
    idle: Mutex<Vec<Sender<Job>>>,
    /// Cooperative cancellation token: set by [`ProverSession::cancel`],
    /// observed by every in-flight search (including parallel branch
    /// workers) at state-visit granularity.
    cancelled: AtomicBool,
}

/// A reusable handle to the proof-search engine.  See the module docs.
#[derive(Clone)]
pub struct ProverSession {
    inner: Arc<SessionInner>,
}

impl ProverSession {
    /// Create a session with the given budgets.
    pub fn new(cfg: ProverConfig) -> ProverSession {
        ProverSession {
            inner: Arc::new(SessionInner {
                cfg,
                caches: SearchCaches::new(),
                idle: Mutex::new(Vec::new()),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// The budgets every goal of this session is proved under.
    pub fn config(&self) -> &ProverConfig {
        &self.inner.cfg
    }

    /// Number of refuted search states currently memoized.
    pub fn memo_len(&self) -> usize {
        self.inner.caches.memo.len()
    }

    /// Number of cached ≠-rewrite candidates.  Grows while goals are proved
    /// and persists across [`ProverSession::prove_batch`] calls — later
    /// goals of a warm session answer most candidate probes from here.
    pub fn rewrite_cache_len(&self) -> usize {
        self.inner.caches.rewrites.len()
    }

    /// Number of cached specialization enumerations.
    pub fn spec_cache_len(&self) -> usize {
        self.inner.caches.specs.len()
    }

    /// Lifetime lock-traffic counters of the failure memo's sharded map:
    /// shard count, acquisitions, and how many acquisitions found their
    /// shard held by a concurrent worker.  Use the delta between two
    /// snapshots to attribute contention to one workload; per-goal deltas
    /// are already reported in [`ProverStats::memo_lock`](crate::ProverStats::memo_lock).
    pub fn memo_shard_stats(&self) -> nrs_shared::ShardStats {
        self.inner.caches.memo.stats()
    }

    /// Number of root goals this session has settled (proved or exhausted);
    /// re-proving any of them replays the remembered outcome without
    /// searching.
    pub fn goal_cache_len(&self) -> usize {
        self.inner.caches.goals.len()
    }

    /// Cooperatively cancel every in-flight and future search of this
    /// session (and its clones — the token is shared).  In-flight goals stop
    /// at their next state visit and report [`ProofError::Cancelled`];
    /// cancelled outcomes are never cached, and the session's warm caches
    /// survive, so after [`ProverSession::reset_cancel`] the session is as
    /// good as before.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Has [`ProverSession::cancel`] been called (without a reset since)?
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Clear the cancellation token, making the session (with its warm
    /// caches) usable for new goals again.
    pub fn reset_cancel(&self) {
        self.inner.cancelled.store(false, Ordering::SeqCst);
    }

    /// Prove `Θ ; ⊢ Δ` (one-sided), returning a checked proof object.  Runs
    /// on one of the session's big-stack workers; concurrent calls get
    /// concurrent workers.
    pub fn prove_sequent(&self, sequent: &Sequent) -> Result<(Proof, ProverStats), ProofError> {
        self.prove_batch(std::slice::from_ref(sequent))
            .pop()
            .expect("one result per sequent")
    }

    /// Prove a batch of sequents in one worker dispatch: the goals run
    /// back-to-back on the same big-stack worker, each pruned by the failures
    /// (and warmed by the specialization cache) of the ones before it.
    /// Results come back in input order.  The batch **short-circuits**: a
    /// failed goal fails the whole run for the callers this serves (the
    /// batched synthesis goals), so the remaining sequents are not searched
    /// and report a "skipped" error instead.  This is the call
    /// `nrs-synthesis` funnels the per-depth goals of one synthesis run
    /// through.
    pub fn prove_batch(
        &self,
        sequents: &[Sequent],
    ) -> Vec<Result<(Proof, ProverStats), ProofError>> {
        if sequents.is_empty() {
            return Vec::new();
        }
        if self.is_cancelled() {
            return sequents
                .iter()
                .map(|_| Err(ProofError::Cancelled))
                .collect();
        }
        let worker = match self
            .inner
            .idle
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop()
        {
            Some(w) => w,
            None => match self.spawn_worker() {
                Ok(w) => w,
                Err(e) => return sequents.iter().map(|_| Err(e.clone())).collect(),
            },
        };
        let (reply_tx, reply_rx) = channel();
        if worker
            .send(Job {
                seqs: sequents.to_vec(),
                reply: reply_tx,
            })
            .is_err()
        {
            return sequents
                .iter()
                .map(|_| {
                    Err(ProofError::SearchFailed(
                        "prover worker exited unexpectedly".into(),
                    ))
                })
                .collect();
        }
        let Ok(out) = reply_rx.recv() else {
            return sequents
                .iter()
                .map(|_| {
                    Err(ProofError::SearchFailed(
                        "proof search thread panicked".into(),
                    ))
                })
                .collect();
        };
        // Only a worker that answered goes back in the pool; a panicked one
        // is simply dropped (its channel closed with it).
        self.inner
            .idle
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(worker);
        out
    }

    /// Convenience wrapper: prove that `assumptions` entail one of `goals`
    /// under the membership context `ctx` (a two-sided sequent `Θ; Γ ⊢ Δ`).
    pub fn prove(
        &self,
        ctx: &InContext,
        assumptions: &[Formula],
        goals: &[Formula],
    ) -> Result<(Proof, ProverStats), ProofError> {
        let seq = Sequent::two_sided(
            ctx.clone(),
            assumptions.iter().cloned(),
            goals.iter().cloned(),
        );
        self.prove_sequent(&seq)
    }

    fn spawn_worker(&self) -> Result<Sender<Job>, ProofError> {
        let (job_tx, job_rx) = channel::<Job>();
        // The worker must hold the session state *weakly*: its own job sender
        // lives in `SessionInner.idle`, so a strong reference here would form
        // a cycle that kept every worker thread (and the memo) alive after
        // the last session handle is dropped.  With a weak reference, the
        // drop of the last handle drops the idle senders, `recv` disconnects,
        // and the workers exit.
        let inner = Arc::downgrade(&self.inner);
        std::thread::Builder::new()
            .name("nrs-prover-worker".into())
            .stack_size(WORKER_STACK)
            .spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    // the caller holds a session handle for the duration of
                    // its call, so an upgrade failure means the session is
                    // gone and nobody is waiting for replies
                    let Some(inner) = inner.upgrade() else { break };
                    let mut results = Vec::with_capacity(job.seqs.len());
                    let mut failed = false;
                    for seq in &job.seqs {
                        if failed {
                            results.push(Err(ProofError::SearchFailed(
                                "skipped: an earlier goal of the batch failed".into(),
                            )));
                            continue;
                        }
                        let out = prove_sequent_inner(
                            seq,
                            &inner.cfg,
                            &inner.caches,
                            Some(&inner.cancelled),
                        );
                        failed = out.is_err();
                        results.push(out);
                    }
                    drop(inner);
                    // a dropped receiver just means the caller gave up
                    let _ = job.reply.send(results);
                }
            })
            .map_err(|e| ProofError::SearchFailed(format!("could not spawn search worker: {e}")))?;
        Ok(job_tx)
    }
}

impl std::fmt::Debug for ProverSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProverSession")
            .field("cfg", &self.inner.cfg)
            .field("memo_len", &self.memo_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrs_delta0::MemAtom;
    use nrs_proof::check_proof;

    #[test]
    fn session_reuses_workers_and_memo() {
        let session = ProverSession::new(ProverConfig::quick());
        let ctx = InContext::from_atoms([MemAtom::new("x", "S")]);
        let goal = Formula::exists("z", "S", Formula::eq_ur("z", "x"));
        let (p1, _s1) = session
            .prove(&ctx, &[], std::slice::from_ref(&goal))
            .unwrap();
        assert!(check_proof(&p1).is_ok());
        let (p2, s2) = session.prove(&ctx, &[], &[goal]).unwrap();
        assert!(check_proof(&p2).is_ok());
        assert_eq!(p1, p2, "replayed goal returns the identical proof");
        assert_eq!(s2.visited, 0, "second run replays from the goal cache");
        assert_eq!(s2.goal_cache_hits, 1);
        assert_eq!(session.goal_cache_len(), 1);
        // an invalid goal populates the memo…
        let bad = Formula::forall("z", "S", Formula::eq_ur("z", "x"));
        assert!(session
            .prove(&ctx, &[], std::slice::from_ref(&bad))
            .is_err());
        let memo_after_first = session.memo_len();
        assert!(memo_after_first > 0);
        // …and the second failing run is pruned by it
        assert!(session.prove(&ctx, &[], &[bad]).is_err());
    }

    #[test]
    fn concurrent_goals_share_one_session() {
        let session = ProverSession::new(ProverConfig::quick());
        let goals: Vec<Formula> = (0..4)
            .map(|i| {
                Formula::or(
                    Formula::eq_ur(format!("x{i}").as_str(), "y"),
                    Formula::neq_ur(format!("x{i}").as_str(), "y"),
                )
            })
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = goals
                .iter()
                .map(|g| {
                    let session = &session;
                    scope.spawn(move || {
                        session.prove(&InContext::new(), &[], std::slice::from_ref(g))
                    })
                })
                .collect();
            for h in handles {
                let (proof, _) = h.join().unwrap().unwrap();
                assert!(check_proof(&proof).is_ok());
            }
        });
    }
}
