//! Property-based equivalence for the parallel disjunction search: with
//! `parallel_branches: true` the top-level risky choice points are explored
//! on concurrent workers, but the *committed* branch is the lowest-indexed
//! success, so the returned proof must be **identical** (not merely
//! equivalent) to the sequential search's, and the Ok/Err verdict must agree
//! on every sequent.  Both sides are re-checked with the independent proof
//! checker.

use nrs_delta0::{Formula, InContext, MemAtom, Term};
use nrs_proof::{check_proof, Sequent};
use nrs_prover::{ProverConfig, ProverSession};
use proptest::prelude::*;

/// Small budgets keep the exhaustive-failure cases fast while staying far
/// from the state cap (an abort could otherwise make verdicts depend on
/// cross-branch visit order).
fn cfg(parallel: bool) -> ProverConfig {
    ProverConfig {
        max_risky: 2,
        max_formulas: 60,
        max_rewrites: 12,
        spec_limit: 16,
        max_states: 20_000,
        parallel_branches: parallel,
        ..ProverConfig::default()
    }
}

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // splitmix64
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }

    fn var(&mut self) -> Term {
        Term::var(*self.pick(&["x", "y", "z"]))
    }

    /// Like the session-equivalence generator, but biased toward ∨/∃ over
    /// conjunction-bearing bodies: those are exactly the shapes that create
    /// several top-level risky candidates for the dispatcher to fan out.
    fn formula(&mut self, depth: usize) -> Formula {
        let leaf = depth == 0 || self.next().is_multiple_of(4);
        if leaf {
            match self.next() % 6 {
                0 | 1 => Formula::eq_ur(self.var(), self.var()),
                2 | 3 => Formula::neq_ur(self.var(), self.var()),
                4 => Formula::True,
                _ => Formula::False,
            }
        } else {
            let bound = *self.pick(&["S", "T"]);
            let var = *self.pick(&["v", "w"]);
            match self.next() % 6 {
                0 => Formula::and(self.formula(depth - 1), self.formula(depth - 1)),
                1 | 2 => Formula::or(self.formula(depth - 1), self.formula(depth - 1)),
                3 => Formula::forall(var, bound, self.formula(depth - 1)),
                _ => Formula::exists(var, bound, self.formula(depth - 1)),
            }
        }
    }

    fn sequent(&mut self) -> Sequent {
        let mut atoms = Vec::new();
        for (elem, set) in [("x", "S"), ("y", "S"), ("z", "T")] {
            if self.next().is_multiple_of(2) {
                atoms.push(MemAtom::new(elem, set));
            }
        }
        let assumptions: Vec<Formula> = (0..self.next() % 2).map(|_| self.formula(2)).collect();
        let goals: Vec<Formula> = (0..1 + self.next() % 2).map(|_| self.formula(3)).collect();
        Sequent::two_sided(InContext::from_atoms(atoms), assumptions, goals)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel branch search ≡ sequential search: same verdict per sequent,
    /// byte-identical proofs, and both proofs pass the checker.
    #[test]
    fn prop_parallel_search_returns_the_sequential_proof(seed in 0u64..100_000) {
        let mut gen = Gen(seed);
        let sequents: Vec<Sequent> = (0..4).map(|_| gen.sequent()).collect();

        for seq in &sequents {
            // fresh sessions per sequent: no cross-goal cache can mask a
            // divergence between the two search modes
            let par = ProverSession::new(cfg(true)).prove_sequent(seq);
            let snd = ProverSession::new(cfg(false)).prove_sequent(seq);
            prop_assert!(
                par.is_ok() == snd.is_ok(),
                "verdicts diverge on {}: parallel {:?} vs sequential {:?}",
                seq,
                par.as_ref().map(|_| "Ok"),
                snd.as_ref().map(|_| "Ok")
            );
            if let (Ok((pp, _)), Ok((sp, _))) = (&par, &snd) {
                prop_assert!(
                    pp == sp,
                    "parallel search committed a different proof on {seq}"
                );
                prop_assert!(
                    check_proof(pp).is_ok(),
                    "parallel proof fails the checker on {seq}"
                );
                prop_assert!(
                    check_proof(sp).is_ok(),
                    "sequential proof fails the checker on {seq}"
                );
            }
        }
    }
}
