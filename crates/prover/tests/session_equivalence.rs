//! Property-based equivalence: proving a family of sequents through one
//! shared [`ProverSession`] (warm failure memo, reused workers) must be
//! **provability-equivalent** to proving each sequent with a cold prover —
//! same Ok/Err verdict per sequent, and every returned proof still passes the
//! independent checker.  This is what makes cross-goal memo reuse safe in
//! practice: the memo key carries the search-relevant state, so away from
//! budget boundaries (where candidate discovery order can matter — see the
//! caveat in `search.rs`) a hit only prunes subtrees that would fail again.

use nrs_delta0::{Formula, InContext, MemAtom, Term};
use nrs_proof::{check_proof, Sequent};
use nrs_prover::{ProverConfig, ProverSession};
use proptest::prelude::*;

/// Small budgets keep the exhaustive-failure cases fast while staying far
/// from the state cap on these tiny formulas (an abort could otherwise make
/// verdicts budget-dependent).
fn cfg() -> ProverConfig {
    ProverConfig {
        max_risky: 2,
        max_formulas: 60,
        max_rewrites: 12,
        spec_limit: 16,
        max_states: 20_000,
    }
}

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // splitmix64
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }

    fn var(&mut self) -> Term {
        Term::var(*self.pick(&["x", "y", "z"]))
    }

    fn formula(&mut self, depth: usize) -> Formula {
        let leaf = depth == 0 || self.next().is_multiple_of(3);
        if leaf {
            match self.next() % 6 {
                0 | 1 => Formula::eq_ur(self.var(), self.var()),
                2 | 3 => Formula::neq_ur(self.var(), self.var()),
                4 => Formula::True,
                _ => Formula::False,
            }
        } else {
            let bound = *self.pick(&["S", "T"]);
            let var = *self.pick(&["v", "w"]);
            match self.next() % 4 {
                0 => Formula::and(self.formula(depth - 1), self.formula(depth - 1)),
                1 => Formula::or(self.formula(depth - 1), self.formula(depth - 1)),
                2 => Formula::forall(var, bound, self.formula(depth - 1)),
                _ => Formula::exists(var, bound, self.formula(depth - 1)),
            }
        }
    }

    fn sequent(&mut self) -> Sequent {
        let mut atoms = Vec::new();
        for (elem, set) in [("x", "S"), ("y", "S"), ("z", "T")] {
            if self.next().is_multiple_of(2) {
                atoms.push(MemAtom::new(elem, set));
            }
        }
        let assumptions: Vec<Formula> = (0..self.next() % 2).map(|_| self.formula(2)).collect();
        let goals: Vec<Formula> = (0..1 + self.next() % 2).map(|_| self.formula(2)).collect();
        Sequent::two_sided(InContext::from_atoms(atoms), assumptions, goals)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Session-cached search ≡ cold search on generated sequent families.
    #[test]
    fn prop_session_cached_search_is_provability_equivalent(seed in 0u64..100_000) {
        let mut gen = Gen(seed);
        let sequents: Vec<Sequent> = (0..4).map(|_| gen.sequent()).collect();

        let warm = ProverSession::new(cfg());
        for seq in &sequents {
            let warm_outcome = warm.prove_sequent(seq);
            let cold_outcome = ProverSession::new(cfg()).prove_sequent(seq);
            prop_assert!(
                warm_outcome.is_ok() == cold_outcome.is_ok(),
                "verdicts diverge on {}: warm {:?} vs cold {:?}",
                seq,
                warm_outcome.as_ref().map(|_| "Ok"),
                cold_outcome.as_ref().map(|_| "Ok")
            );
            if let Ok((proof, _)) = &warm_outcome {
                prop_assert!(
                    check_proof(proof).is_ok(),
                    "session-cached proof fails the checker on {seq}"
                );
                prop_assert!(&proof.conclusion == seq);
            }
            if let Ok((proof, _)) = &cold_outcome {
                prop_assert!(
                    check_proof(proof).is_ok(),
                    "cold proof fails the checker on {seq}"
                );
            }
        }
    }
}
