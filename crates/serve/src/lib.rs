//! # nrs-serve
//!
//! Fault-tolerant serving of maintained rewritings.
//!
//! The synthesis pipeline ends with a [`MaintainedRewriting`]: views and
//! answer kept incrementally up to date under base updates.  This crate
//! wraps that engine in the machinery a long-running service needs:
//!
//! * **Epoch-published snapshots.**  Readers never lock against writers: a
//!   [`ViewServer`] publishes an [`Arc<Snapshot>`] per successfully applied
//!   batch, and [`ViewServer::snapshot`] hands the current one out with an
//!   atomic pointer read.  A snapshot is immutable and internally consistent
//!   (answer, views and base all from the same epoch) — the persistent
//!   values underneath make publication O(1), not a copy.
//! * **Validated, coalesced ingest.**  [`ViewServer::submit`] checks each
//!   batch against the base [`Schema`] (unknown relation, non-set relation,
//!   ill-typed tuple) and rejects overlapping deltas; queued batches are
//!   [coalesced][UpdateBatch::coalesce] with sequential semantics and
//!   checked for exactness against the live base at
//!   [flush][ViewServer::flush] time.  A rejected batch never modifies
//!   state.
//! * **Transactional application with graceful degradation.**  A batch
//!   either applies completely — every view, the answer, and a new published
//!   epoch — or not at all.  An operator failure mid-propagation rolls the
//!   engine back to the pre-batch state, **degrades** the failing operator
//!   to recompute-on-dirty (visible in [`ViewServer::coverage`], ROADMAP
//!   item 5), and retries through the degraded plan: the server keeps
//!   serving, slower but correct, instead of dying or corrupting.
//! * **A typed error taxonomy.**  [`NrsError`] says *what kind* of failure
//!   occurred — batch rejected (fix and resubmit), maintenance failed (state
//!   rolled back), prover timeout vs budget exhaustion — with `Display`
//!   messages meant for operators, not `Debug` dumps.
//!
//! With the **`fault-injection`** feature, the server's lock and publish
//! points call the maintenance engine's deterministic fault hooks
//! (`nrs_ivm::fault`), so a chaos harness can fail every reachable site and
//! assert that readers always see a complete epoch and the next clean batch
//! converges to the naive oracle.

use nrs_ivm::fault;
use nrs_proof::ProofError;
use nrs_synthesis::{
    CoverageReport, DegradedOperator, DeltaSet, IvmError, MaintainedRewriting, RewritingResult,
    SynthesisError, UpdateBatch,
};
use nrs_value::{Instance, Name, Schema, Value};
use std::sync::{Arc, Mutex, RwLock};

/// What went wrong, in terms a serving layer can act on.
///
/// The variants split by *recovery action*:
///
/// * [`Rejected`][NrsError::Rejected] — the batch was malformed; nothing
///   changed, fix the batch and resubmit;
/// * [`Maintenance`][NrsError::Maintenance] — propagation failed; the
///   server rolled back to the pre-batch epoch (degrading the failing
///   operator when it could) and keeps serving;
/// * [`Timeout`][NrsError::Timeout] / [`Cancelled`][NrsError::Cancelled] —
///   transient prover outcomes, retry may succeed;
/// * [`BudgetExhausted`][NrsError::BudgetExhausted] — a stable prover
///   verdict for the configured budgets;
/// * [`Synthesis`][NrsError::Synthesis] / [`Internal`][NrsError::Internal]
///   — derivation or invariant failures; not retryable as-is.
#[derive(Debug, Clone)]
pub enum NrsError {
    /// The batch failed validation (schema, overlap or exactness); no state
    /// was modified.
    Rejected(IvmError),
    /// Incremental propagation failed; the engine was rolled back to its
    /// pre-batch state.
    Maintenance(IvmError),
    /// Proof search hit its wall-clock deadline.
    Timeout {
        /// Milliseconds elapsed when the deadline fired.
        elapsed_ms: u64,
        /// Search states visited before giving up.
        visited: usize,
    },
    /// Proof search exhausted its configured budgets.
    BudgetExhausted(String),
    /// Proof search was cancelled cooperatively.
    Cancelled,
    /// The synthesis/derivation pipeline failed.
    Synthesis(SynthesisError),
    /// An invariant of the serving layer was violated.
    Internal(String),
}

impl NrsError {
    /// Was the batch rejected without any state change (so the caller can
    /// fix it and resubmit)?
    pub fn is_rejection(&self) -> bool {
        matches!(self, NrsError::Rejected(_))
    }

    /// Is this a transient failure worth retrying as-is?
    pub fn is_transient(&self) -> bool {
        matches!(self, NrsError::Timeout { .. } | NrsError::Cancelled)
    }
}

impl std::fmt::Display for NrsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NrsError::Rejected(e) => write!(f, "update batch rejected: {e}"),
            NrsError::Maintenance(e) => {
                write!(f, "maintenance failed (state rolled back): {e}")
            }
            NrsError::Timeout {
                elapsed_ms,
                visited,
            } => {
                write!(
                    f,
                    "proof search timed out after {elapsed_ms} ms ({visited} states visited)"
                )
            }
            NrsError::BudgetExhausted(m) => write!(f, "proof search budget exhausted: {m}"),
            NrsError::Cancelled => write!(f, "proof search cancelled"),
            NrsError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            NrsError::Internal(m) => write!(f, "internal serving error: {m}"),
        }
    }
}

impl std::error::Error for NrsError {}

impl From<IvmError> for NrsError {
    fn from(e: IvmError) -> Self {
        if e.is_validation() {
            NrsError::Rejected(e)
        } else {
            NrsError::Maintenance(e)
        }
    }
}

impl From<SynthesisError> for NrsError {
    fn from(e: SynthesisError) -> Self {
        match e {
            SynthesisError::Maintenance(ivm) => ivm.into(),
            SynthesisError::ProofNotFound { error, .. } => match error {
                ProofError::Timeout {
                    elapsed_ms,
                    visited,
                } => NrsError::Timeout {
                    elapsed_ms,
                    visited,
                },
                ProofError::BudgetExhausted(m) => NrsError::BudgetExhausted(m),
                ProofError::Cancelled => NrsError::Cancelled,
                other => NrsError::Synthesis(SynthesisError::ProofNotFound {
                    purpose: String::new(),
                    error: other,
                }),
            },
            other => NrsError::Synthesis(other),
        }
    }
}

/// One published epoch: an immutable, internally consistent view of the
/// pipeline (base, views and answer all post the same batch).  Cheap to
/// clone and hold — the values underneath are persistent and shared.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Publication counter: epoch `n+1` is epoch `n` plus exactly one
    /// successfully applied batch.
    pub epoch: u64,
    answer: Value,
    views: Instance,
    base: Instance,
    degraded: Vec<DegradedOperator>,
}

impl Snapshot {
    /// The maintained query answer at this epoch.
    pub fn answer(&self) -> &Value {
        &self.answer
    }

    /// One view's materialization at this epoch.
    pub fn view(&self, name: &Name) -> Option<&Value> {
        self.views.try_get(name)
    }

    /// The view instance (view names bound to materializations).
    pub fn views(&self) -> &Instance {
        &self.views
    }

    /// The base instance at this epoch.
    pub fn base(&self) -> &Instance {
        &self.base
    }

    /// Operators running degraded (recompute-on-dirty) at this epoch.
    pub fn degraded(&self) -> &[DegradedOperator] {
        &self.degraded
    }
}

/// The outcome of a successful flush: the newly published snapshot, the
/// answer's exact delta, and any operators degraded while healing failures
/// of this batch.
#[derive(Debug, Clone)]
pub struct FlushReport {
    /// The snapshot published for this batch.
    pub snapshot: Arc<Snapshot>,
    /// Exact delta of the answer (empty when the batch didn't reach it).
    pub answer_delta: DeltaSet,
    /// Operators degraded to recompute-on-dirty while applying this batch.
    pub degraded: Vec<DegradedOperator>,
}

/// The writer-side state: the live engine plus the ingest queue.
struct ServerState {
    maintained: MaintainedRewriting,
    pending: Vec<UpdateBatch>,
    epoch: u64,
}

/// A serving wrapper around a [`MaintainedRewriting`]: validated ingest,
/// transactional batch application, epoch-published snapshots, graceful
/// degradation.  See the crate docs for the guarantees.
///
/// The server is `Sync`: any number of reader threads call
/// [`snapshot`][ViewServer::snapshot] (an atomic pointer read behind an
/// `RwLock` held only for the clone) while one or more writers
/// [`submit`][ViewServer::submit] and [`flush`][ViewServer::flush] behind
/// the state mutex.
pub struct ViewServer {
    schema: Schema,
    state: Mutex<ServerState>,
    published: RwLock<Arc<Snapshot>>,
}

impl ViewServer {
    /// Materialize `result` over `base` and publish epoch 0.
    pub fn new(result: &RewritingResult, base: &Instance) -> Result<ViewServer, NrsError> {
        let schema = result.problem.base_schema()?;
        let maintained = MaintainedRewriting::new(result, base)?;
        let snapshot = Arc::new(Self::capture(&maintained, 0));
        Ok(ViewServer {
            schema,
            state: Mutex::new(ServerState {
                maintained,
                pending: Vec::new(),
                epoch: 0,
            }),
            published: RwLock::new(snapshot),
        })
    }

    /// The schema incoming batches are validated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The current published snapshot — always a complete epoch, never a
    /// partially applied batch.  O(1): an `Arc` clone under a read lock.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.published
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The current published epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Validate a batch against the schema and enqueue it.  Rejected
    /// batches ([`NrsError::Rejected`]) are not enqueued; nothing changes.
    pub fn submit(&self, batch: &UpdateBatch) -> Result<(), NrsError> {
        batch.check_disjoint()?;
        batch.validate_schema(&self.schema)?;
        self.lock_state()?.pending.push(batch.clone());
        Ok(())
    }

    /// Number of batches queued and not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pending
            .len()
    }

    /// Apply everything queued as **one** transactional batch and publish a
    /// new epoch.
    ///
    /// The queued batches are coalesced with sequential semantics, checked
    /// for exactness against the live base, and driven through the engine's
    /// self-healing transactional apply.  On success the queue is drained
    /// and the new snapshot published.  On failure the engine is rolled back
    /// to the pre-batch epoch and the queue is dropped (the combined batch
    /// is rejected as a unit) — except a fault at the lock site, which
    /// leaves the queue intact for a clean retry.
    pub fn flush(&self) -> Result<FlushReport, NrsError> {
        let mut st = self.lock_state()?;
        if st.pending.is_empty() {
            return Ok(FlushReport {
                snapshot: self.snapshot(),
                answer_delta: DeltaSet::new(),
                degraded: Vec::new(),
            });
        }
        // exactness is sequential: each queued batch must be exact against
        // the base *as of its turn*, not against the pre-flush base
        let mut scratch = st.maintained.base().clone();
        for b in &st.pending {
            let step = b
                .validate_against(&scratch)
                .and_then(|()| b.apply(&scratch));
            match step {
                Ok(next) => scratch = next,
                Err(e) => {
                    st.pending.clear();
                    return Err(e.into());
                }
            }
        }
        // the net batch: coalescing nets each tuple to its final disposition,
        // and normalizing against the pre-flush base drops round trips
        // (insert-then-delete of a non-member, delete-then-insert of a member)
        let combined = match UpdateBatch::coalesce(st.pending.iter())
            .normalize_against(st.maintained.base())
        {
            Ok(c) => c,
            Err(e) => {
                st.pending.clear();
                return Err(e.into());
            }
        };
        // capture the pre-batch state: propagation can roll itself back, but
        // a publish-site failure below must unwind manually
        let base_before = st.maintained.base().clone();
        let views_before = st.maintained.view_instance().clone();
        let (answer_delta, degraded) = match st.maintained.apply_resilient(&combined) {
            Ok(out) => out,
            Err(e) => {
                st.pending.clear();
                return Err(e.into());
            }
        };
        // a fault between application and publication must reject the batch
        // as a whole: readers keep the old epoch, so the writer state must
        // return to it too
        if let Err(e) = fault::hit("serve.publish") {
            st.pending.clear();
            st.maintained
                .restore(&base_before, &views_before)
                .map_err(|r| {
                    NrsError::Internal(format!("rollback after failed publish failed: {r}"))
                })?;
            return Err(e.into());
        }
        st.pending.clear();
        st.epoch += 1;
        let snapshot = Arc::new(Self::capture(&st.maintained, st.epoch));
        *self.published.write().unwrap_or_else(|p| p.into_inner()) = snapshot.clone();
        Ok(FlushReport {
            snapshot,
            answer_delta,
            degraded,
        })
    }

    /// [`submit`][ViewServer::submit] + [`flush`][ViewServer::flush] in one
    /// call: validate, apply transactionally, publish.
    pub fn apply(&self, batch: &UpdateBatch) -> Result<FlushReport, NrsError> {
        self.submit(batch)?;
        self.flush()
    }

    /// Per-stage maintenance coverage of the live engine, including
    /// operators degraded by self-healing (ROADMAP item 5).
    pub fn coverage(&self) -> nrs_synthesis::RewritingCoverage {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .maintained
            .coverage()
    }

    /// Coverage of the answer query alone.
    pub fn answer_coverage(&self) -> CoverageReport {
        self.coverage().answer
    }

    /// The operators currently degraded across the pipeline.
    pub fn degraded_operators(&self) -> Vec<DegradedOperator> {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .maintained
            .degraded_operators()
    }

    /// Naive end-to-end oracle check of the *live* engine state.
    pub fn cross_check(&self, result: &RewritingResult) -> Result<bool, NrsError> {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        Ok(st.maintained.cross_check(result)?)
    }

    /// Acquire the writer lock, running the lock-site fault hook (a fault
    /// here fails the operation before anything is read or written).
    fn lock_state(&self) -> Result<std::sync::MutexGuard<'_, ServerState>, NrsError> {
        fault::hit("serve.lock")?;
        Ok(self.state.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// An immutable snapshot of the engine at `epoch` (cheap: the values are
    /// persistent, so the clones are pointer-deep).
    fn capture(maintained: &MaintainedRewriting, epoch: u64) -> Snapshot {
        Snapshot {
            epoch,
            answer: maintained.answer().clone(),
            views: maintained.view_instance().clone(),
            base: maintained.base().clone(),
            degraded: maintained.degraded_operators(),
        }
    }
}

impl std::fmt::Debug for ViewServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("ViewServer")
            .field("epoch", &snap.epoch)
            .field("degraded", &snap.degraded.len())
            .field("pending", &self.pending_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrs_synthesis::views::{partition_instance, partition_problem};
    use nrs_synthesis::SynthesisConfig;
    use std::collections::BTreeSet;

    fn setup(size: usize, seed: u64) -> (RewritingResult, Instance) {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        (result, partition_instance(size, seed))
    }

    fn small_base() -> Instance {
        let s: BTreeSet<Value> = [1u64, 2, 3].into_iter().map(Value::atom).collect();
        let f: BTreeSet<Value> = [2u64].into_iter().map(Value::atom).collect();
        Instance::from_bindings([
            (Name::new("S"), Value::from_set(s)),
            (Name::new("F"), Value::from_set(f)),
        ])
    }

    #[test]
    fn server_publishes_epochs_and_readers_keep_old_snapshots() {
        let (result, base) = setup(30, 11);
        let server = ViewServer::new(&result, &base).expect("server");
        assert_eq!(server.epoch(), 0);
        let old = server.snapshot();
        let answer0 = old.answer().clone();
        let mut batch = UpdateBatch::new();
        batch.insert("S", Value::atom(9001));
        batch.insert("F", Value::atom(9001));
        let report = server.apply(&batch).expect("apply");
        assert_eq!(report.snapshot.epoch, 1);
        assert_eq!(server.epoch(), 1);
        // a reader holding the old epoch is untouched by the publication
        assert_eq!(old.epoch, 0);
        assert_eq!(old.answer(), &answer0);
        assert_ne!(server.snapshot().answer(), &answer0);
        assert!(server.cross_check(&result).expect("oracle"));
        assert!(report.degraded.is_empty());
    }

    #[test]
    fn rejected_batches_change_nothing() {
        let (result, base) = setup(20, 3);
        let server = ViewServer::new(&result, &base).expect("server");
        let before = server.snapshot();

        // unknown relation: schema validation at submit time
        let mut unknown = UpdateBatch::new();
        unknown.insert("Nope", Value::atom(1));
        let err = server.submit(&unknown).unwrap_err();
        assert!(err.is_rejection(), "got {err}");

        // overlapping delta: only constructible by wrapping one verbatim
        let mut ds = DeltaSet::new();
        ds.inserts.insert(Value::atom(7));
        ds.deletes.insert(Value::atom(7));
        let overlap = UpdateBatch::from_delta("S", ds);
        let err = server.submit(&overlap).unwrap_err();
        assert!(
            matches!(err, NrsError::Rejected(IvmError::OverlappingDelta { .. })),
            "got {err}"
        );

        // ill-typed tuple: S holds atoms, not sets
        let mut ill = UpdateBatch::new();
        ill.insert("S", Value::from_set(BTreeSet::new()));
        let err = server.submit(&ill).unwrap_err();
        assert!(err.is_rejection(), "got {err}");

        assert_eq!(server.pending_len(), 0, "rejected batches are not enqueued");
        assert_eq!(server.epoch(), 0);
        assert_eq!(server.snapshot().answer(), before.answer());
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn flush_checks_exactness_against_the_live_base() {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        let server = ViewServer::new(&result, &small_base()).expect("server");
        // inserting a member passes the schema but fails exactness at flush
        let mut dup = UpdateBatch::new();
        dup.insert("S", Value::atom(1));
        server.submit(&dup).expect("schema-valid");
        assert_eq!(server.pending_len(), 1);
        let err = server.flush().unwrap_err();
        assert!(
            matches!(err, NrsError::Rejected(IvmError::DuplicateInsert { .. })),
            "got {err}"
        );
        assert_eq!(server.pending_len(), 0, "rejected queue is dropped");
        assert_eq!(server.epoch(), 0);
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn queued_batches_coalesce_with_sequential_semantics() {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        let server = ViewServer::new(&result, &small_base()).expect("server");
        // insert 10 then delete it again: the coalesced batch must cancel,
        // otherwise exactness would reject the delete of a non-member
        let mut b1 = UpdateBatch::new();
        b1.insert("S", Value::atom(10));
        b1.insert("S", Value::atom(11));
        let mut b2 = UpdateBatch::new();
        b2.delete("S", Value::atom(10));
        server.submit(&b1).expect("b1");
        server.submit(&b2).expect("b2");
        let report = server.flush().expect("flush");
        assert_eq!(report.snapshot.epoch, 1);
        assert!(report.answer_delta.inserts.contains(&Value::atom(11)));
        assert!(!report.answer_delta.inserts.contains(&Value::atom(10)));
        assert!(server.cross_check(&result).expect("oracle"));
        // an empty flush is a no-op at the same epoch
        let report = server.flush().expect("empty flush");
        assert_eq!(report.snapshot.epoch, 1);
        assert!(report.answer_delta.is_empty());
    }

    #[test]
    fn error_taxonomy_maps_prover_outcomes() {
        let timeout: NrsError = SynthesisError::ProofNotFound {
            purpose: "test".into(),
            error: ProofError::Timeout {
                elapsed_ms: 12,
                visited: 34,
            },
        }
        .into();
        assert!(
            matches!(
                timeout,
                NrsError::Timeout {
                    elapsed_ms: 12,
                    visited: 34
                }
            ),
            "got {timeout}"
        );
        assert!(timeout.is_transient());
        let budget: NrsError = SynthesisError::ProofNotFound {
            purpose: "test".into(),
            error: ProofError::BudgetExhausted("max_states=5".into()),
        }
        .into();
        assert!(
            matches!(budget, NrsError::BudgetExhausted(_)),
            "got {budget}"
        );
        assert!(!budget.is_transient());
        let cancelled: NrsError = SynthesisError::ProofNotFound {
            purpose: "test".into(),
            error: ProofError::Cancelled,
        }
        .into();
        assert!(matches!(cancelled, NrsError::Cancelled), "got {cancelled}");
        assert!(cancelled.is_transient());
    }
}
