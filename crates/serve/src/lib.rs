//! # nrs-serve
//!
//! Fault-tolerant, pipelined serving of maintained rewritings.
//!
//! The synthesis pipeline ends with a [`MaintainedRewriting`]: views and
//! answer kept incrementally up to date under base updates.  This crate
//! wraps that engine in the machinery a long-running service needs:
//!
//! * **Epoch-published snapshots.**  Readers never lock against writers: a
//!   [`ViewServer`] publishes an [`Arc<Snapshot>`] per successfully applied
//!   batch, and [`ViewServer::snapshot`] hands the current one out with an
//!   atomic pointer read.  A snapshot is immutable and internally consistent
//!   (answer, views and base all from the same epoch) — the persistent
//!   values underneath make publication O(1), not a copy.
//! * **A bounded, pipelined ingest queue.**  Producers
//!   [`submit`][ViewServer::submit] (blocking when the queue is full) or
//!   [`try_submit`][ViewServer::try_submit] (returning
//!   [`NrsError::Backpressure`]) validated batches into a bounded queue
//!   without ever touching the maintenance engine; a dedicated batching
//!   writer thread ([`ViewServer::start`]) drains the queue, so producers
//!   never contend with maintenance.  Queued batches are coalesced into a
//!   single exact net batch ([`UpdateBatch::coalesce_exact`]) and the
//!   engine pass plus snapshot publication are amortized across the whole
//!   batch.
//! * **Sharded parallel maintenance.**  With [`ServerConfig::workers`] > 1
//!   the engine partitions each operator's delta work into contiguous
//!   key-range shards evaluated on scoped worker threads and merged
//!   deterministically — maintained state is bit-identical to the
//!   sequential path.  Per-flush round/shard counters are surfaced in
//!   [`FlushReport`].
//! * **Transactional application with graceful degradation.**  A batch
//!   either applies completely — every view, the answer, and a new published
//!   epoch — or not at all.  An operator failure mid-propagation rolls the
//!   engine back to the pre-batch state, **degrades** the failing operator
//!   to recompute-on-dirty (visible in [`ViewServer::coverage`], ROADMAP
//!   item 5), and retries through the degraded plan: the server keeps
//!   serving, slower but correct, instead of dying or corrupting.
//! * **A typed error taxonomy.**  [`NrsError`] says *what kind* of failure
//!   occurred — batch rejected (fix and resubmit), queue full (retry
//!   later), maintenance failed (state rolled back), prover timeout vs
//!   budget exhaustion — with `Display` messages meant for operators, not
//!   `Debug` dumps.
//!
//! ## Pipeline
//!
//! ```text
//!  producers                ingest queue               writer thread
//!  submit ──▶ (validate) ─▶┌────────────┐  drain ≤    ┌─────────────┐
//!  submit ──▶ (validate) ─▶│ VecDeque,  │─ max_batch ▶│ coalesce +  │
//!     ⋮           ⋮        │ bounded,   │             │ exactness,  │─▶ publish
//!  submit ──▶ (validate) ─▶│ 2 condvars │             │ apply       │   epoch n+1
//!                ▲         └────────────┘             │ (sharded)   │
//!                │ full → Backpressure / block        └─────────────┘
//!                └─ space signalled per flush          readers: snapshot()
//! ```
//!
//! Failure semantics along the pipeline: a batch that fails *validation*
//! (schema, overlap, exactness) is dropped — it can never apply, so
//! retrying is pointless; a flush that fails *transiently* (injected
//! fault, maintenance failure after self-healing gave up) re-queues the
//! drained batches in order, so a retry — manual or the writer thread's
//! next cycle — converges without the producer resubmitting.  Readers keep
//! the old epoch through every failure.  A **stopping** writer bounds its
//! final drain: after [`SHUTDOWN_DRAIN_FAILURES`] consecutive failed flush
//! cycles it gives up and exits with the unflushed batches left queued
//! (visible in its [`WriterStats`] and [`ViewServer::pending_len`]), so a
//! persistent failure can never block [`WriterHandle::stop`].
//!
//! With the **`fault-injection`** feature, the server's ingest, lock,
//! coalesce, publish and writer-cycle points call the maintenance engine's
//! deterministic fault hooks (`nrs_ivm::fault`), so a chaos harness can
//! fail every reachable site and assert that readers always see a complete
//! epoch and the next clean batch converges to the naive oracle.

use nrs_ivm::fault;
use nrs_proof::ProofError;
use nrs_synthesis::{
    AnswerDeltas, CoverageReport, DegradedOperator, DeltaSet, IvmError, MaintStats,
    MaintainedRewriting, MaintainedWorkload, RewritingCoverage, RewritingResult, SynthesisError,
    UpdateBatch, WorkloadCoverage, WorkloadRewriting,
};
use nrs_value::{Instance, Name, Schema, Value};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Cached handles into the global metrics registry (`nrs-obs`), resolved
/// once: the serving hot paths touch only atomics.
struct ObsMetrics {
    submits: Arc<nrs_obs::Counter>,
    rejected: Arc<nrs_obs::Counter>,
    backpressure: Arc<nrs_obs::Counter>,
    flushes: Arc<nrs_obs::Counter>,
    flush_errors: Arc<nrs_obs::Counter>,
    batches: Arc<nrs_obs::Counter>,
    updates: Arc<nrs_obs::Counter>,
    requeued_batches: Arc<nrs_obs::Counter>,
    dropped_batches: Arc<nrs_obs::Counter>,
    queue_depth: Arc<nrs_obs::Gauge>,
    epoch: Arc<nrs_obs::Gauge>,
    queue_wait_seconds: Arc<nrs_obs::Histogram>,
    batches_per_flush: Arc<nrs_obs::Histogram>,
    batch_tuples: Arc<nrs_obs::Histogram>,
    flush_seconds: Arc<nrs_obs::Histogram>,
    drain_seconds: Arc<nrs_obs::Histogram>,
    coalesce_seconds: Arc<nrs_obs::Histogram>,
    maintain_seconds: Arc<nrs_obs::Histogram>,
    publish_seconds: Arc<nrs_obs::Histogram>,
}

fn obs() -> &'static ObsMetrics {
    static OBS: OnceLock<ObsMetrics> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = nrs_obs::global();
        ObsMetrics {
            submits: r.counter("serve.submits_total"),
            rejected: r.counter("serve.rejected_batches_total"),
            backpressure: r.counter("serve.backpressure_total"),
            flushes: r.counter("serve.flushes_total"),
            flush_errors: r.counter("serve.flush_errors_total"),
            batches: r.counter("serve.batches_total"),
            updates: r.counter("serve.updates_total"),
            requeued_batches: r.counter("serve.requeued_batches_total"),
            dropped_batches: r.counter("serve.dropped_batches_total"),
            queue_depth: r.gauge("serve.queue_depth"),
            epoch: r.gauge("serve.epoch"),
            queue_wait_seconds: r.timer("serve.queue_wait_seconds"),
            batches_per_flush: r.histogram("serve.batches_per_flush"),
            batch_tuples: r.histogram("serve.batch_tuples"),
            flush_seconds: r.timer("serve.flush_seconds"),
            drain_seconds: r.timer("serve.flush.drain_seconds"),
            coalesce_seconds: r.timer("serve.flush.coalesce_seconds"),
            maintain_seconds: r.timer("serve.flush.maintain_seconds"),
            publish_seconds: r.timer("serve.flush.publish_seconds"),
        }
    })
}

/// What went wrong, in terms a serving layer can act on.
///
/// The variants split by *recovery action*:
///
/// * [`Rejected`][NrsError::Rejected] — the batch was malformed; nothing
///   changed, fix the batch and resubmit;
/// * [`Backpressure`][NrsError::Backpressure] — the ingest queue is full;
///   nothing changed, retry after a flush drains it (or use the blocking
///   [`submit`][ViewServer::submit]);
/// * [`Maintenance`][NrsError::Maintenance] — propagation failed; the
///   server rolled back to the pre-batch epoch (degrading the failing
///   operator when it could) and keeps serving;
/// * [`Timeout`][NrsError::Timeout] / [`Cancelled`][NrsError::Cancelled] —
///   transient prover outcomes, retry may succeed;
/// * [`BudgetExhausted`][NrsError::BudgetExhausted] — a stable prover
///   verdict for the configured budgets;
/// * [`Synthesis`][NrsError::Synthesis] / [`Internal`][NrsError::Internal]
///   — derivation or invariant failures; not retryable as-is.
#[derive(Debug, Clone)]
pub enum NrsError {
    /// The batch failed validation (schema, overlap or exactness); no state
    /// was modified.
    Rejected(IvmError),
    /// The bounded ingest queue is at capacity; the batch was **not**
    /// enqueued and no state was modified.  Retry after a flush, or use
    /// the blocking [`submit`][ViewServer::submit].
    Backpressure {
        /// The configured [`ServerConfig::queue_capacity`].
        capacity: usize,
    },
    /// Incremental propagation failed; the engine was rolled back to its
    /// pre-batch state.
    Maintenance(IvmError),
    /// Proof search hit its wall-clock deadline.
    Timeout {
        /// Milliseconds elapsed when the deadline fired.
        elapsed_ms: u64,
        /// Search states visited before giving up.
        visited: usize,
    },
    /// Proof search exhausted its configured budgets.
    BudgetExhausted(String),
    /// Proof search was cancelled cooperatively.
    Cancelled,
    /// The synthesis/derivation pipeline failed.
    Synthesis(SynthesisError),
    /// An invariant of the serving layer was violated.
    Internal(String),
}

impl NrsError {
    /// Was the batch rejected without any state change (so the caller can
    /// fix it and resubmit)?
    pub fn is_rejection(&self) -> bool {
        matches!(self, NrsError::Rejected(_))
    }

    /// Is this a transient failure worth retrying as-is?  Backpressure is
    /// transient: the same batch succeeds once a flush drains the queue.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NrsError::Timeout { .. } | NrsError::Cancelled | NrsError::Backpressure { .. }
        )
    }

    /// Was the batch refused because the ingest queue is full?
    pub fn is_backpressure(&self) -> bool {
        matches!(self, NrsError::Backpressure { .. })
    }
}

impl std::fmt::Display for NrsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NrsError::Rejected(e) => write!(f, "update batch rejected: {e}"),
            NrsError::Backpressure { capacity } => {
                write!(
                    f,
                    "ingest queue full ({capacity} batches); retry after a flush"
                )
            }
            NrsError::Maintenance(e) => {
                write!(f, "maintenance failed (state rolled back): {e}")
            }
            NrsError::Timeout {
                elapsed_ms,
                visited,
            } => {
                write!(
                    f,
                    "proof search timed out after {elapsed_ms} ms ({visited} states visited)"
                )
            }
            NrsError::BudgetExhausted(m) => write!(f, "proof search budget exhausted: {m}"),
            NrsError::Cancelled => write!(f, "proof search cancelled"),
            NrsError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            NrsError::Internal(m) => write!(f, "internal serving error: {m}"),
        }
    }
}

impl std::error::Error for NrsError {}

impl From<IvmError> for NrsError {
    fn from(e: IvmError) -> Self {
        if e.is_validation() {
            NrsError::Rejected(e)
        } else {
            NrsError::Maintenance(e)
        }
    }
}

impl From<SynthesisError> for NrsError {
    fn from(e: SynthesisError) -> Self {
        match e {
            SynthesisError::Maintenance(ivm) => ivm.into(),
            SynthesisError::ProofNotFound { error, .. } => match error {
                ProofError::Timeout {
                    elapsed_ms,
                    visited,
                } => NrsError::Timeout {
                    elapsed_ms,
                    visited,
                },
                ProofError::BudgetExhausted(m) => NrsError::BudgetExhausted(m),
                ProofError::Cancelled => NrsError::Cancelled,
                other => NrsError::Synthesis(SynthesisError::ProofNotFound {
                    purpose: String::new(),
                    error: other,
                }),
            },
            other => NrsError::Synthesis(other),
        }
    }
}

/// Tuning knobs of the serving pipeline.  The defaults suit a test or
/// small-service deployment; see each field for what it trades off.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum batches the ingest queue holds before
    /// [`try_submit`][ViewServer::try_submit] returns
    /// [`NrsError::Backpressure`] and [`submit`][ViewServer::submit]
    /// blocks.  Bounds writer memory under a producer storm.
    pub queue_capacity: usize,
    /// Maximum queued batches one flush drains and coalesces.  Larger
    /// batches amortize the engine pass and snapshot publication over more
    /// updates; smaller batches bound per-flush latency.
    pub max_batch: usize,
    /// How long the writer thread lets a batch build up after the first
    /// arrival before flushing (it flushes early when `max_batch` is
    /// reached).  Also the writer's idle poll interval for shutdown.
    pub batch_window: Duration,
    /// Worker threads for the engine's sharded parallel delta evaluation
    /// (1 = fully sequential).  Results are bit-identical either way; see
    /// `nrs_ivm::MaintainedQuery::set_workers`.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_capacity: 1024,
            max_batch: 256,
            batch_window: Duration::from_millis(1),
            workers: 1,
        }
    }
}

/// One published epoch: an immutable, internally consistent view of the
/// pipeline (base, views and every query answer all post the same batch).
/// Cheap to clone and hold — the values underneath are persistent and
/// shared.
///
/// A single-query server publishes one named answer; a workload server
/// ([`ViewServer::serve_workload`]) publishes one answer per query, all
/// from the same epoch.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Publication counter: epoch `n+1` is epoch `n` plus exactly one
    /// successfully applied (coalesced) batch.
    pub epoch: u64,
    answers: Vec<(Name, Value)>,
    views: Instance,
    base: Instance,
    degraded: Vec<DegradedOperator>,
}

impl Snapshot {
    /// The maintained answer of the first (or only) query at this epoch.
    pub fn answer(&self) -> &Value {
        &self.answers[0].1
    }

    /// The maintained answer of one named query at this epoch.
    pub fn answer_named(&self, name: &Name) -> Option<&Value> {
        self.answers.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Every `(query, answer)` pair of this epoch, in workload order (a
    /// single-query server has exactly one entry).
    pub fn answers(&self) -> &[(Name, Value)] {
        &self.answers
    }

    /// One view's materialization at this epoch.
    pub fn view(&self, name: &Name) -> Option<&Value> {
        self.views.try_get(name)
    }

    /// The view instance (view names bound to materializations).
    pub fn views(&self) -> &Instance {
        &self.views
    }

    /// The base instance at this epoch.
    pub fn base(&self) -> &Instance {
        &self.base
    }

    /// Operators running degraded (recompute-on-dirty) at this epoch.
    pub fn degraded(&self) -> &[DegradedOperator] {
        &self.degraded
    }
}

/// The outcome of a successful flush: the newly published snapshot, the
/// answer's exact delta, operators degraded while healing failures of this
/// batch, and the pipeline counters for capacity planning.
#[derive(Debug, Clone)]
pub struct FlushReport {
    /// The snapshot published for this batch.
    pub snapshot: Arc<Snapshot>,
    /// Exact delta of the first (or only) query's answer (empty when the
    /// batch didn't reach it).
    pub answer_delta: DeltaSet,
    /// Exact per-query answer deltas, in workload order (a single-query
    /// server reports one entry; an empty flush reports none).
    pub answer_deltas: Vec<(Name, DeltaSet)>,
    /// Operators degraded to recompute-on-dirty while applying this batch.
    pub degraded: Vec<DegradedOperator>,
    /// Queued batches coalesced into this flush (0 for an empty flush).
    pub batches: usize,
    /// Tuples (inserts + deletes) in the coalesced net batch actually
    /// driven through the engine — round trips cancel out before this.
    pub updates: usize,
    /// Worker threads the engine was configured with for this flush.
    pub workers: usize,
    /// Engine round/shard counters attributed to this flush (how many
    /// evaluation rounds ran, how many fanned out, items and shards).
    pub maint: MaintStats,
    /// **Cumulative** batches this server has dropped over its lifetime
    /// (drops happen only on *failed* flushes — a validation failure of
    /// the coalesced batch — so a successful flush reports the running
    /// total, letting an operator notice drops without scraping errors).
    /// The triggering error is retained in
    /// [`ViewServer::last_drop_error`].
    pub dropped_batches: u64,
}

/// The maintenance engine behind a server: one rewriting, or a whole
/// workload with a shared view set.  Every pipeline call site goes through
/// this enum, so the flush path is identical for both shapes.
enum Engine {
    Single {
        maintained: Box<MaintainedRewriting>,
        query: Name,
    },
    Workload(MaintainedWorkload),
}

/// A pre-batch state capture, sufficient to [`Engine::restore`] after a
/// failed publication.
struct EngineBackup {
    base: Instance,
    views: Instance,
    /// Workload engines additionally need the views + shared instance the
    /// answers are maintained over.
    aug: Option<Instance>,
}

impl Engine {
    fn set_workers(&mut self, workers: usize) {
        match self {
            Engine::Single { maintained, .. } => maintained.set_workers(workers),
            Engine::Workload(w) => w.set_workers(workers),
        }
    }

    fn maint_stats(&self) -> MaintStats {
        match self {
            Engine::Single { maintained, .. } => maintained.maint_stats(),
            Engine::Workload(w) => w.maint_stats(),
        }
    }

    /// Self-healing transactional apply, normalized to per-query deltas.
    fn apply_resilient(
        &mut self,
        batch: &UpdateBatch,
    ) -> Result<(AnswerDeltas, Vec<DegradedOperator>), SynthesisError> {
        match self {
            Engine::Single { maintained, query } => {
                let (delta, degraded) = maintained.apply_resilient(batch)?;
                Ok((vec![(*query, delta)], degraded))
            }
            Engine::Workload(w) => w.apply_resilient(batch),
        }
    }

    fn backup(&self) -> EngineBackup {
        match self {
            Engine::Single { maintained, .. } => EngineBackup {
                base: maintained.base().clone(),
                views: maintained.view_instance().clone(),
                aug: None,
            },
            Engine::Workload(w) => EngineBackup {
                base: w.base().clone(),
                views: w.view_instance().clone(),
                aug: Some(w.answer_instance().clone()),
            },
        }
    }

    fn restore(&mut self, backup: &EngineBackup) -> Result<(), SynthesisError> {
        match self {
            Engine::Single { maintained, .. } => maintained.restore(&backup.base, &backup.views),
            Engine::Workload(w) => w.restore(
                &backup.base,
                &backup.views,
                backup.aug.as_ref().unwrap_or(&backup.views),
            ),
        }
    }

    fn base(&self) -> &Instance {
        match self {
            Engine::Single { maintained, .. } => maintained.base(),
            Engine::Workload(w) => w.base(),
        }
    }

    /// The instance snapshots expose as "views": the view materializations
    /// for a single rewriting, views **plus shared fragments** for a
    /// workload.
    fn published_views(&self) -> &Instance {
        match self {
            Engine::Single { maintained, .. } => maintained.view_instance(),
            Engine::Workload(w) => w.answer_instance(),
        }
    }

    fn answers(&self) -> Vec<(Name, Value)> {
        match self {
            Engine::Single { maintained, query } => vec![(*query, maintained.answer().clone())],
            Engine::Workload(w) => w
                .answers()
                .into_iter()
                .map(|(n, v)| (n, v.clone()))
                .collect(),
        }
    }

    fn degraded_operators(&self) -> Vec<DegradedOperator> {
        match self {
            Engine::Single { maintained, .. } => maintained.degraded_operators(),
            Engine::Workload(w) => w.degraded_operators(),
        }
    }

    /// Coverage in the single-rewriting shape (the workload's shared
    /// fragments are folded into the view list; its first answer stands for
    /// `answer`).  [`Engine::workload_coverage`] has the full per-query
    /// picture.
    fn coverage(&self) -> RewritingCoverage {
        match self {
            Engine::Single { maintained, .. } => maintained.coverage(),
            Engine::Workload(w) => {
                let wc = w.coverage();
                let mut views = wc.views;
                views.extend(wc.shared);
                let answer = wc
                    .answers
                    .into_iter()
                    .next()
                    .map(|(_, c)| c)
                    .expect("a workload has at least one query");
                RewritingCoverage { views, answer }
            }
        }
    }

    fn workload_coverage(&self) -> Option<WorkloadCoverage> {
        match self {
            Engine::Single { .. } => None,
            Engine::Workload(w) => Some(w.coverage()),
        }
    }
}

/// The writer-side state: the live engine plus the epoch counter.
struct ServerState {
    maintained: Engine,
    epoch: u64,
}

/// Consecutive failed flush cycles after which a stopping writer thread
/// gives up draining and exits with the batches left queued.  Transient
/// flush failures re-queue their drained batches, so without this bound a
/// *persistently* failing flush (e.g. an [`NrsError::Internal`] from a
/// failed rollback, which is not a rejection and is therefore re-queued)
/// would turn [`WriterHandle::stop`] into an indefinitely blocking
/// busy-loop — the batching window short-circuits once stop is requested.
pub const SHUTDOWN_DRAIN_FAILURES: u64 = 3;

/// The bounded ingest queue producers write into: a deque behind its own
/// mutex (never held across engine work) plus two condvars — `arrival`
/// wakes the writer thread, `space` wakes blocked producers after a flush.
/// Each queued batch carries its enqueue instant so the flush that drains
/// it can record the queue-wait latency (`serve.queue_wait_seconds`); a
/// re-queued batch is re-stamped, so the histogram measures one queue
/// residency per drain, not cumulative latency across retries.
struct Ingest {
    queue: Mutex<VecDeque<(UpdateBatch, Instant)>>,
    arrival: Condvar,
    space: Condvar,
}

/// Counters the batching writer thread accumulates over its lifetime,
/// returned by [`WriterHandle::stop`].
#[derive(Debug, Clone, Default)]
pub struct WriterStats {
    /// Flush cycles that published a new epoch.
    pub flushes: u64,
    /// Queued batches drained across all successful flushes.
    pub batches: u64,
    /// Net tuples driven through the engine across all successful flushes.
    pub updates: u64,
    /// Flush cycles that failed (the drained batches were re-queued or
    /// dropped depending on the error class; see the crate docs).
    pub errors: u64,
    /// Queued batches **dropped** by failed flushes this writer ran: a
    /// coalesced batch that fails validation can never apply, so its
    /// drained prefix is discarded.  Previously these vanished with only a
    /// generic error count; now they are tallied here (and in
    /// [`FlushReport::dropped_batches`] /
    /// [`ViewServer::dropped_batches`]), with the triggering error kept in
    /// [`ViewServer::last_drop_error`].
    pub dropped_batches: u64,
    /// The last flush error observed, if any.
    pub last_error: Option<NrsError>,
}

/// Handle to the dedicated batching writer thread started by
/// [`ViewServer::start`].  [`stop`][WriterHandle::stop] drains the queue,
/// joins the thread and returns its [`WriterStats`]; dropping the handle
/// also stops and joins the thread.
pub struct WriterHandle {
    server: Arc<ViewServer>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<WriterStats>>,
}

impl WriterHandle {
    /// Signal the writer to finish: it drains whatever is queued with a
    /// final flush, then exits.  Returns the thread's lifetime counters.
    ///
    /// The shutdown drain is **bounded**: if the final flushes keep failing
    /// ([`SHUTDOWN_DRAIN_FAILURES`] consecutive cycles), the writer gives
    /// up and exits with the unflushed batches left queued — visible as
    /// [`ViewServer::pending_len`] > 0 plus a non-zero
    /// [`errors`][WriterStats::errors] count — rather than retrying a
    /// persistent failure forever and blocking this call.  A writer thread
    /// that *panicked* is reported the same way: the returned stats carry
    /// `errors >= 1` and an [`NrsError::Internal`] `last_error`, never a
    /// clean default.
    pub fn stop(mut self) -> WriterStats {
        self.signal_stop();
        match self.thread.take() {
            Some(t) => t.join().unwrap_or_else(|_| WriterStats {
                errors: 1,
                last_error: Some(NrsError::Internal("writer thread panicked".into())),
                ..WriterStats::default()
            }),
            None => WriterStats::default(),
        }
    }

    /// Set the stop flag and wake the writer if it is parked waiting for
    /// arrivals (the flag is checked under the queue lock, so notifying
    /// under it cannot be missed).
    fn signal_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _guard = self
            .server
            .ingest
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        self.server.ingest.arrival.notify_all();
    }
}

impl Drop for WriterHandle {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            self.signal_stop();
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WriterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterHandle")
            .field("running", &self.thread.is_some())
            .finish()
    }
}

/// A serving wrapper around a [`MaintainedRewriting`]: validated bounded
/// ingest, transactional coalesced batch application, epoch-published
/// snapshots, graceful degradation.  See the crate docs for the pipeline
/// and its guarantees.
///
/// The server is `Sync`: any number of reader threads call
/// [`snapshot`][ViewServer::snapshot] (an atomic pointer read behind an
/// `RwLock` held only for the clone) and any number of producers
/// [`submit`][ViewServer::submit] into the ingest queue, while one flusher
/// — the dedicated writer thread ([`start`][ViewServer::start]) or manual
/// [`flush`][ViewServer::flush] calls — drives the engine behind the state
/// mutex.
pub struct ViewServer {
    schema: Schema,
    config: ServerConfig,
    state: Mutex<ServerState>,
    published: RwLock<Arc<Snapshot>>,
    ingest: Ingest,
    /// Lifetime count of queued batches dropped by failed flushes (a
    /// coalesced batch that fails validation discards its drained prefix).
    dropped: AtomicU64,
    /// The error that triggered the most recent drop, for post-mortems.
    last_drop: Mutex<Option<NrsError>>,
}

/// Fluent construction of a [`ViewServer`]: one path owns what used to be
/// spread across hand-built [`ServerConfig`]s, [`ViewServer::new`] /
/// [`ViewServer::with_config`] and a separate [`ViewServer::start`] call.
///
/// ```no_run
/// # use nrs_serve::ViewServer;
/// # fn demo(result: &nrs_synthesis::RewritingResult, base: &nrs_value::Instance) {
/// let (server, writer) = ViewServer::builder()
///     .workers(2)
///     .max_batch(64)
///     .spawn(result, base)
///     .unwrap();
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ViewServerBuilder {
    config: ServerConfig,
}

impl ViewServerBuilder {
    /// Start from an explicit [`ServerConfig`] instead of the defaults.
    pub fn config(mut self, config: ServerConfig) -> ViewServerBuilder {
        self.config = config;
        self
    }

    /// See [`ServerConfig::queue_capacity`].
    pub fn queue_capacity(mut self, capacity: usize) -> ViewServerBuilder {
        self.config.queue_capacity = capacity;
        self
    }

    /// See [`ServerConfig::max_batch`].
    pub fn max_batch(mut self, max_batch: usize) -> ViewServerBuilder {
        self.config.max_batch = max_batch;
        self
    }

    /// See [`ServerConfig::batch_window`].
    pub fn batch_window(mut self, window: Duration) -> ViewServerBuilder {
        self.config.batch_window = window;
        self
    }

    /// See [`ServerConfig::workers`].
    pub fn workers(mut self, workers: usize) -> ViewServerBuilder {
        self.config.workers = workers;
        self
    }

    /// Materialize a single rewriting over `base` and publish epoch 0.
    pub fn serve(self, result: &RewritingResult, base: &Instance) -> Result<ViewServer, NrsError> {
        nrs_obs::init_from_env();
        let schema = result.problem.base_schema()?;
        let query = result.problem.query.name;
        let maintained = Box::new(MaintainedRewriting::new(result, base)?);
        ViewServer::from_engine(Engine::Single { maintained, query }, schema, self.config)
    }

    /// Materialize a whole multi-query workload over `base` — every shared
    /// view maintained once per flush, one epoch covering every named
    /// answer — and publish epoch 0.
    pub fn serve_workload(
        self,
        rewriting: &WorkloadRewriting,
        base: &Instance,
    ) -> Result<ViewServer, NrsError> {
        nrs_obs::init_from_env();
        if rewriting.queries().is_empty() {
            return Err(NrsError::Internal(
                "cannot serve an empty workload (no queries)".into(),
            ));
        }
        let schema = rewriting.problem.base_schema()?;
        let maintained = MaintainedWorkload::new(rewriting, base)?;
        ViewServer::from_engine(Engine::Workload(maintained), schema, self.config)
    }

    /// [`serve`](Self::serve) plus [`ViewServer::start`]: returns the
    /// server and its running writer thread in one call.
    pub fn spawn(
        self,
        result: &RewritingResult,
        base: &Instance,
    ) -> Result<(Arc<ViewServer>, WriterHandle), NrsError> {
        let server = Arc::new(self.serve(result, base)?);
        let writer = server.start();
        Ok((server, writer))
    }

    /// [`serve_workload`](Self::serve_workload) plus [`ViewServer::start`].
    pub fn spawn_workload(
        self,
        rewriting: &WorkloadRewriting,
        base: &Instance,
    ) -> Result<(Arc<ViewServer>, WriterHandle), NrsError> {
        let server = Arc::new(self.serve_workload(rewriting, base)?);
        let writer = server.start();
        Ok((server, writer))
    }
}

impl ViewServer {
    /// Fluent construction: configuration knobs, then
    /// [`serve`](ViewServerBuilder::serve) /
    /// [`serve_workload`](ViewServerBuilder::serve_workload) (or the
    /// `spawn` variants to also start the writer thread).
    pub fn builder() -> ViewServerBuilder {
        ViewServerBuilder::default()
    }

    /// Materialize `result` over `base` and publish epoch 0, with the
    /// default [`ServerConfig`].  Delegates to [`ViewServer::builder`].
    pub fn new(result: &RewritingResult, base: &Instance) -> Result<ViewServer, NrsError> {
        Self::builder().serve(result, base)
    }

    /// Materialize `result` over `base` and publish epoch 0, with explicit
    /// pipeline knobs.  Delegates to [`ViewServer::builder`].
    pub fn with_config(
        result: &RewritingResult,
        base: &Instance,
        config: ServerConfig,
    ) -> Result<ViewServer, NrsError> {
        Self::builder().config(config).serve(result, base)
    }

    /// Serve a multi-query workload with the default [`ServerConfig`]: one
    /// epoch per flush covering every named answer, each shared view
    /// maintained exactly once per batch.  Delegates to
    /// [`ViewServer::builder`].
    pub fn serve_workload(
        rewriting: &WorkloadRewriting,
        base: &Instance,
    ) -> Result<ViewServer, NrsError> {
        Self::builder().serve_workload(rewriting, base)
    }

    /// Shared tail of every construction path.
    fn from_engine(
        mut maintained: Engine,
        schema: Schema,
        config: ServerConfig,
    ) -> Result<ViewServer, NrsError> {
        maintained.set_workers(config.workers);
        let snapshot = Arc::new(Self::capture(&maintained, 0));
        Ok(ViewServer {
            schema,
            config,
            state: Mutex::new(ServerState {
                maintained,
                epoch: 0,
            }),
            published: RwLock::new(snapshot),
            ingest: Ingest {
                queue: Mutex::new(VecDeque::new()),
                arrival: Condvar::new(),
                space: Condvar::new(),
            },
            dropped: AtomicU64::new(0),
            last_drop: Mutex::new(None),
        })
    }

    /// The schema incoming batches are validated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The pipeline configuration this server runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The current published snapshot — always a complete epoch, never a
    /// partially applied batch.  O(1): an `Arc` clone under a read lock.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.published
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The current published epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Validate a batch against the schema and enqueue it, **blocking**
    /// while the ingest queue is at capacity (a concurrent flusher — the
    /// writer thread or manual [`flush`][ViewServer::flush] calls — must
    /// be draining it, or this blocks indefinitely).  Rejected batches
    /// ([`NrsError::Rejected`]) are not enqueued; nothing changes.
    pub fn submit(&self, batch: &UpdateBatch) -> Result<(), NrsError> {
        let m = obs();
        self.validate(batch).inspect_err(|_| m.rejected.inc())?;
        let mut q = self.lock_ingest();
        if q.len() >= self.config.queue_capacity {
            // counted once per blocked submit, not per spurious wakeup
            m.backpressure.inc();
            while q.len() >= self.config.queue_capacity {
                q = self.ingest.space.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }
        q.push_back((batch.clone(), Instant::now()));
        m.submits.inc();
        m.queue_depth.set(q.len() as i64);
        self.ingest.arrival.notify_one();
        Ok(())
    }

    /// Validate a batch against the schema and enqueue it **without
    /// blocking**: a full queue returns [`NrsError::Backpressure`] and the
    /// batch is not enqueued.  Rejected batches are not enqueued either;
    /// in both cases nothing changes.
    pub fn try_submit(&self, batch: &UpdateBatch) -> Result<(), NrsError> {
        let m = obs();
        self.validate(batch).inspect_err(|_| m.rejected.inc())?;
        let mut q = self.lock_ingest();
        if q.len() >= self.config.queue_capacity {
            m.backpressure.inc();
            return Err(NrsError::Backpressure {
                capacity: self.config.queue_capacity,
            });
        }
        q.push_back((batch.clone(), Instant::now()));
        m.submits.inc();
        m.queue_depth.set(q.len() as i64);
        self.ingest.arrival.notify_one();
        Ok(())
    }

    /// Submit-time validation shared by both entry points, running the
    /// ingest fault hook (a fault here refuses the batch before anything
    /// is queued).
    fn validate(&self, batch: &UpdateBatch) -> Result<(), NrsError> {
        fault::hit("serve.ingest")?;
        batch.check_disjoint()?;
        batch.validate_schema(&self.schema)?;
        Ok(())
    }

    /// Number of batches queued and not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.lock_ingest().len()
    }

    /// Start the dedicated batching writer thread: it waits for arrivals,
    /// lets a batch build for [`batch_window`][ServerConfig::batch_window]
    /// (or until [`max_batch`][ServerConfig::max_batch] batches are
    /// queued), then [flushes][ViewServer::flush].  Producers submit from
    /// any thread; readers are untouched.  Stop (and drain) it with
    /// [`WriterHandle::stop`].
    pub fn start(self: &Arc<ViewServer>) -> WriterHandle {
        let server = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || server.writer_loop(&stop_flag));
        WriterHandle {
            server: Arc::clone(self),
            stop,
            thread: Some(thread),
        }
    }

    /// Body of the batching writer thread.
    fn writer_loop(&self, stop: &AtomicBool) -> WriterStats {
        let mut stats = WriterStats::default();
        // Consecutive failed flush cycles since the last success; once stop
        // is requested this bounds the drain (see SHUTDOWN_DRAIN_FAILURES).
        let mut consecutive_failures: u64 = 0;
        loop {
            // park until a batch arrives or we are told to stop
            {
                let mut q = self.lock_ingest();
                while q.is_empty() && !stop.load(Ordering::SeqCst) {
                    let (guard, _) = self
                        .ingest
                        .arrival
                        .wait_timeout(q, self.config.batch_window)
                        .unwrap_or_else(|p| p.into_inner());
                    q = guard;
                }
                if q.is_empty() && stop.load(Ordering::SeqCst) {
                    return stats;
                }
                // batching window: give producers a moment to pile on, but
                // flush as soon as a full batch is waiting
                let deadline = Instant::now() + self.config.batch_window;
                while q.len() < self.config.max_batch && !stop.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = self
                        .ingest
                        .arrival
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(|p| p.into_inner());
                    q = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            // the writer-cycle fault hook: a fault here kills the cycle
            // *before* anything is drained, so the queued batches survive
            // and the next cycle retries them
            let dropped_before = self.dropped_batches();
            let outcome = fault::hit("serve.writer.flush")
                .map_err(NrsError::from)
                .and_then(|()| self.flush());
            stats.dropped_batches += self.dropped_batches() - dropped_before;
            match outcome {
                Ok(report) => {
                    consecutive_failures = 0;
                    if report.batches > 0 {
                        stats.flushes += 1;
                        stats.batches += report.batches as u64;
                        stats.updates += report.updates as u64;
                    }
                }
                Err(e) => {
                    consecutive_failures += 1;
                    stats.errors += 1;
                    stats.last_error = Some(e);
                }
            }
            if stop.load(Ordering::SeqCst)
                && (self.lock_ingest().is_empty()
                    || consecutive_failures >= SHUTDOWN_DRAIN_FAILURES)
            {
                return stats;
            }
        }
    }

    /// Drain up to [`max_batch`][ServerConfig::max_batch] queued batches,
    /// apply them as **one** transactional net batch and publish a new
    /// epoch.
    ///
    /// The drained batches are coalesced with sequential exactness
    /// semantics ([`UpdateBatch::coalesce_exact`]): each batch must be
    /// exact against the base *as of its turn*, and each tuple nets to its
    /// final disposition, so round trips (insert-then-delete of a
    /// non-member, delete-then-insert of a member) vanish before the
    /// engine runs.  The net batch is driven through the engine's
    /// self-healing transactional apply and the new snapshot published.
    ///
    /// On failure the engine is rolled back to the pre-batch epoch; the
    /// drained batches are **dropped** if the combined batch failed
    /// validation (it can never apply), and **re-queued in order** on a
    /// transient failure (injected fault, unhealed maintenance error) so a
    /// retry converges — except a fault at the lock site, which fails
    /// before anything is drained.
    pub fn flush(&self) -> Result<FlushReport, NrsError> {
        let m = obs();
        let start = Instant::now();
        let mut span = nrs_obs::span("serve.flush");
        let out = self.flush_inner();
        m.flush_seconds.record_duration(start.elapsed());
        match &out {
            Ok(report) => {
                if report.batches > 0 {
                    m.flushes.inc();
                    m.batches.add(report.batches as u64);
                    m.updates.add(report.updates as u64);
                }
                m.epoch.set(report.snapshot.epoch as i64);
                span.record("batches", report.batches);
                span.record("updates", report.updates);
                span.record("epoch", report.snapshot.epoch);
            }
            Err(e) => {
                m.flush_errors.inc();
                span.record("error", true);
                nrs_obs::error("serve.flush_failed", e);
            }
        }
        out
    }

    /// [`flush`][ViewServer::flush] minus the instrumentation envelope: the
    /// wrapper records totals and the `serve.flush` span around every exit
    /// path of this body.
    fn flush_inner(&self) -> Result<FlushReport, NrsError> {
        let m = obs();
        // lock order: state mutex first, then the ingest queue (briefly).
        // A fault at the lock site therefore leaves the queue intact.
        let mut drain_span = nrs_obs::span("serve.drain");
        let drain_start = Instant::now();
        let mut st = self.lock_state()?;
        let drained: Vec<(UpdateBatch, Instant)> = {
            let mut q = self.lock_ingest();
            let n = q.len().min(self.config.max_batch);
            let d: Vec<_> = q.drain(..n).collect();
            m.queue_depth.set(q.len() as i64);
            d
        };
        let now = Instant::now();
        for (_, enqueued) in &drained {
            m.queue_wait_seconds
                .record_duration(now.saturating_duration_since(*enqueued));
        }
        m.drain_seconds.record_duration(drain_start.elapsed());
        drain_span.record("batches", drained.len());
        drop(drain_span);
        if drained.is_empty() {
            return Ok(FlushReport {
                snapshot: self.snapshot(),
                answer_delta: DeltaSet::new(),
                answer_deltas: Vec::new(),
                degraded: Vec::new(),
                batches: 0,
                updates: 0,
                workers: self.config.workers,
                maint: MaintStats::default(),
                dropped_batches: self.dropped_batches(),
            });
        }
        m.batches_per_flush.record(drained.len() as u64);
        // coalesce + exactness-check once for the whole batch, against the
        // live base: O(|Δ| log n) instead of cloning the base per batch
        let mut coalesce_span = nrs_obs::span("serve.coalesce");
        let coalesce_start = Instant::now();
        if let Err(e) = fault::hit("serve.coalesce") {
            self.requeue(drained);
            return Err(e.into());
        }
        let combined =
            match UpdateBatch::coalesce_exact(drained.iter().map(|(b, _)| b), st.maintained.base())
            {
                Ok(c) => c,
                Err(e) => {
                    // validation failure: the drained prefix can never apply
                    let e = NrsError::from(e);
                    self.drop_drained(drained.len(), &e);
                    return Err(e);
                }
            };
        m.coalesce_seconds.record_duration(coalesce_start.elapsed());
        m.batch_tuples.record(combined.len() as u64);
        coalesce_span.record("batches", drained.len());
        coalesce_span.record("tuples", combined.len());
        drop(coalesce_span);
        // capture the pre-batch state: propagation can roll itself back, but
        // a publish-site failure below must unwind manually
        let backup = st.maintained.backup();
        let maint_before = st.maintained.maint_stats();
        let mut maintain_span = nrs_obs::span("serve.maintain");
        let maintain_start = Instant::now();
        let (answer_deltas, degraded) = match st.maintained.apply_resilient(&combined) {
            Ok(out) => out,
            Err(e) => {
                let e = NrsError::from(e);
                if e.is_rejection() {
                    self.drop_drained(drained.len(), &e);
                } else {
                    self.requeue(drained);
                }
                return Err(e);
            }
        };
        m.maintain_seconds.record_duration(maintain_start.elapsed());
        maintain_span.record("tuples", combined.len());
        maintain_span.record("degraded", degraded.len());
        drop(maintain_span);
        // a fault between application and publication must reject the batch
        // as a whole: readers keep the old epoch, so the writer state must
        // return to it too — and the drained batches go back for a retry
        let mut publish_span = nrs_obs::span("serve.publish");
        let publish_start = Instant::now();
        if let Err(e) = fault::hit("serve.publish") {
            st.maintained.restore(&backup).map_err(|r| {
                NrsError::Internal(format!("rollback after failed publish failed: {r}"))
            })?;
            self.requeue(drained);
            return Err(e.into());
        }
        st.epoch += 1;
        let snapshot = Arc::new(Self::capture(&st.maintained, st.epoch));
        *self.published.write().unwrap_or_else(|p| p.into_inner()) = snapshot.clone();
        self.ingest.space.notify_all();
        m.publish_seconds.record_duration(publish_start.elapsed());
        publish_span.record("epoch", st.epoch);
        drop(publish_span);
        Ok(FlushReport {
            snapshot,
            answer_delta: answer_deltas
                .first()
                .map(|(_, d)| d.clone())
                .unwrap_or_else(DeltaSet::new),
            answer_deltas,
            degraded,
            batches: drained.len(),
            updates: combined.len(),
            workers: self.config.workers,
            maint: st.maintained.maint_stats() - maint_before,
            dropped_batches: self.dropped_batches(),
        })
    }

    /// [`submit`][ViewServer::submit] + [`flush`][ViewServer::flush] in one
    /// call: validate, apply transactionally, publish.
    pub fn apply(&self, batch: &UpdateBatch) -> Result<FlushReport, NrsError> {
        self.submit(batch)?;
        self.flush()
    }

    /// Per-stage maintenance coverage of the live engine, including
    /// operators degraded by self-healing (ROADMAP item 5).  A workload
    /// server folds its shared fragments into the view list and reports its
    /// first answer; [`workload_coverage`][ViewServer::workload_coverage]
    /// has the full per-query picture.
    pub fn coverage(&self) -> nrs_synthesis::RewritingCoverage {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .maintained
            .coverage()
    }

    /// Full per-query coverage of a workload server (views, shared
    /// fragments, every answer); `None` for a single-query server.
    pub fn workload_coverage(&self) -> Option<WorkloadCoverage> {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .maintained
            .workload_coverage()
    }

    /// Coverage of the answer query alone.
    pub fn answer_coverage(&self) -> CoverageReport {
        self.coverage().answer
    }

    /// The operators currently degraded across the pipeline.
    pub fn degraded_operators(&self) -> Vec<DegradedOperator> {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .maintained
            .degraded_operators()
    }

    /// Cumulative engine round/shard counters (see `nrs_ivm::MaintStats`).
    pub fn maint_stats(&self) -> MaintStats {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .maintained
            .maint_stats()
    }

    /// Naive end-to-end oracle check of the *live* engine state (single-
    /// query servers; use
    /// [`cross_check_workload`][ViewServer::cross_check_workload] for a
    /// workload server).
    pub fn cross_check(&self, result: &RewritingResult) -> Result<bool, NrsError> {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        match &st.maintained {
            Engine::Single { maintained, .. } => Ok(maintained.cross_check(result)?),
            Engine::Workload(_) => Err(NrsError::Internal(
                "cross_check on a workload server: use cross_check_workload".into(),
            )),
        }
    }

    /// Naive end-to-end oracle check of a workload server's live state:
    /// every view, shared fragment and named answer compared against
    /// from-scratch evaluation (and each answer against its unrewritten
    /// query on the base).
    pub fn cross_check_workload(&self, rewriting: &WorkloadRewriting) -> Result<bool, NrsError> {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        match &st.maintained {
            Engine::Workload(w) => Ok(w.cross_check(rewriting)?),
            Engine::Single { .. } => Err(NrsError::Internal(
                "cross_check_workload on a single-query server: use cross_check".into(),
            )),
        }
    }

    /// Acquire the writer lock, running the lock-site fault hook (a fault
    /// here fails the operation before anything is read or written).
    fn lock_state(&self) -> Result<std::sync::MutexGuard<'_, ServerState>, NrsError> {
        fault::hit("serve.lock")?;
        Ok(self.state.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Lock the ingest queue (never held across engine work).
    fn lock_ingest(&self) -> std::sync::MutexGuard<'_, VecDeque<(UpdateBatch, Instant)>> {
        self.ingest.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Put transiently-failed batches back at the front of the queue, in
    /// their original order (re-stamped: queue wait is measured per
    /// residency), and wake the writer for a retry.
    fn requeue(&self, drained: Vec<(UpdateBatch, Instant)>) {
        let m = obs();
        m.requeued_batches.add(drained.len() as u64);
        let mut q = self.lock_ingest();
        for (b, _) in drained.into_iter().rev() {
            q.push_front((b, Instant::now()));
        }
        m.queue_depth.set(q.len() as i64);
        self.ingest.arrival.notify_one();
    }

    /// A validation failure consumed the drained prefix: count the dropped
    /// batches, retain the triggering error for post-mortems, and notify
    /// producers blocked on a full queue that there may now be space.
    /// (These drops used to vanish silently — the only trace was a generic
    /// error return.)
    fn drop_drained(&self, count: usize, cause: &NrsError) {
        self.dropped.fetch_add(count as u64, Ordering::Relaxed);
        *self.last_drop.lock().unwrap_or_else(|p| p.into_inner()) = Some(cause.clone());
        obs().dropped_batches.add(count as u64);
        nrs_obs::error(
            "serve.dropped_batches",
            format_args!("dropped {count} queued batch(es): {cause}"),
        );
        self.ingest.space.notify_all();
    }

    /// Lifetime count of queued batches dropped by failed flushes (a
    /// coalesced batch that fails validation can never apply, so its
    /// drained prefix is discarded rather than re-queued).
    pub fn dropped_batches(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The error that triggered the most recent batch drop, if any.
    pub fn last_drop_error(&self) -> Option<NrsError> {
        self.last_drop
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// One coherent snapshot of **every** registered metric — prover, FO
    /// prover, synthesis, IVM engine and this serving layer share one
    /// global registry, so a single call reports the whole pipeline.  The
    /// server's point-in-time gauges (queue depth, published epoch) are
    /// refreshed before the registry is read.  Render it with
    /// [`to_json`][nrs_obs::MetricsSnapshot::to_json] or query it with the
    /// typed accessors.
    pub fn metrics_snapshot(&self) -> nrs_obs::MetricsSnapshot {
        let m = obs();
        m.queue_depth.set(self.pending_len() as i64);
        m.epoch.set(self.epoch() as i64);
        nrs_obs::global().snapshot()
    }

    /// [`metrics_snapshot`][ViewServer::metrics_snapshot] rendered in the
    /// Prometheus text exposition format, ready to serve from a
    /// `/metrics` endpoint.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }

    /// An immutable snapshot of the engine at `epoch` (cheap: the values are
    /// persistent, so the clones are pointer-deep).
    fn capture(maintained: &Engine, epoch: u64) -> Snapshot {
        Snapshot {
            epoch,
            answers: maintained.answers(),
            views: maintained.published_views().clone(),
            base: maintained.base().clone(),
            degraded: maintained.degraded_operators(),
        }
    }
}

impl std::fmt::Debug for ViewServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("ViewServer")
            .field("epoch", &snap.epoch)
            .field("degraded", &snap.degraded.len())
            .field("pending", &self.pending_len())
            .field("workers", &self.config.workers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrs_synthesis::views::{partition_instance, partition_problem};
    use nrs_synthesis::SynthesisConfig;
    use std::collections::BTreeSet;

    fn setup(size: usize, seed: u64) -> (RewritingResult, Instance) {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        (result, partition_instance(size, seed))
    }

    fn small_base() -> Instance {
        let s: BTreeSet<Value> = [1u64, 2, 3].into_iter().map(Value::atom).collect();
        let f: BTreeSet<Value> = [2u64].into_iter().map(Value::atom).collect();
        Instance::from_bindings([
            (Name::new("S"), Value::from_set(s)),
            (Name::new("F"), Value::from_set(f)),
        ])
    }

    #[test]
    fn server_publishes_epochs_and_readers_keep_old_snapshots() {
        let (result, base) = setup(30, 11);
        let server = ViewServer::new(&result, &base).expect("server");
        assert_eq!(server.epoch(), 0);
        let old = server.snapshot();
        let answer0 = old.answer().clone();
        let mut batch = UpdateBatch::new();
        batch.insert("S", Value::atom(9001));
        batch.insert("F", Value::atom(9001));
        let report = server.apply(&batch).expect("apply");
        assert_eq!(report.snapshot.epoch, 1);
        assert_eq!(server.epoch(), 1);
        assert_eq!(report.batches, 1);
        assert_eq!(report.updates, 2);
        // a reader holding the old epoch is untouched by the publication
        assert_eq!(old.epoch, 0);
        assert_eq!(old.answer(), &answer0);
        assert_ne!(server.snapshot().answer(), &answer0);
        assert!(server.cross_check(&result).expect("oracle"));
        assert!(report.degraded.is_empty());
    }

    #[test]
    fn rejected_batches_change_nothing() {
        let (result, base) = setup(20, 3);
        let server = ViewServer::new(&result, &base).expect("server");
        let before = server.snapshot();

        // unknown relation: schema validation at submit time
        let mut unknown = UpdateBatch::new();
        unknown.insert("Nope", Value::atom(1));
        let err = server.submit(&unknown).unwrap_err();
        assert!(err.is_rejection(), "got {err}");

        // overlapping delta: only constructible by wrapping one verbatim
        let mut ds = DeltaSet::new();
        ds.inserts.insert(Value::atom(7));
        ds.deletes.insert(Value::atom(7));
        let overlap = UpdateBatch::from_delta("S", ds);
        let err = server.submit(&overlap).unwrap_err();
        assert!(
            matches!(err, NrsError::Rejected(IvmError::OverlappingDelta { .. })),
            "got {err}"
        );

        // ill-typed tuple: S holds atoms, not sets
        let mut ill = UpdateBatch::new();
        ill.insert("S", Value::from_set(BTreeSet::new()));
        let err = server.submit(&ill).unwrap_err();
        assert!(err.is_rejection(), "got {err}");

        assert_eq!(server.pending_len(), 0, "rejected batches are not enqueued");
        assert_eq!(server.epoch(), 0);
        assert_eq!(server.snapshot().answer(), before.answer());
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn flush_checks_exactness_against_the_live_base() {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        let server = ViewServer::new(&result, &small_base()).expect("server");
        // inserting a member passes the schema but fails exactness at flush
        let mut dup = UpdateBatch::new();
        dup.insert("S", Value::atom(1));
        server.submit(&dup).expect("schema-valid");
        assert_eq!(server.pending_len(), 1);
        let err = server.flush().unwrap_err();
        assert!(
            matches!(err, NrsError::Rejected(IvmError::DuplicateInsert { .. })),
            "got {err}"
        );
        assert_eq!(server.pending_len(), 0, "rejected queue is dropped");
        assert_eq!(server.epoch(), 0);
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn queued_batches_coalesce_with_sequential_semantics() {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        let server = ViewServer::new(&result, &small_base()).expect("server");
        // insert 10 then delete it again: the coalesced batch must cancel,
        // otherwise exactness would reject the delete of a non-member
        let mut b1 = UpdateBatch::new();
        b1.insert("S", Value::atom(10));
        b1.insert("S", Value::atom(11));
        let mut b2 = UpdateBatch::new();
        b2.delete("S", Value::atom(10));
        server.submit(&b1).expect("b1");
        server.submit(&b2).expect("b2");
        let report = server.flush().expect("flush");
        assert_eq!(report.snapshot.epoch, 1);
        assert_eq!(report.batches, 2);
        assert_eq!(
            report.updates, 1,
            "the 10 round trip cancels before the engine"
        );
        assert!(report.answer_delta.inserts.contains(&Value::atom(11)));
        assert!(!report.answer_delta.inserts.contains(&Value::atom(10)));
        assert!(server.cross_check(&result).expect("oracle"));
        // an empty flush is a no-op at the same epoch
        let report = server.flush().expect("empty flush");
        assert_eq!(report.snapshot.epoch, 1);
        assert!(report.answer_delta.is_empty());
        assert_eq!(report.batches, 0);
    }

    #[test]
    fn try_submit_backpressures_at_capacity_and_flush_makes_room() {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        let config = ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        };
        let server = ViewServer::with_config(&result, &small_base(), config).expect("server");
        let mut b1 = UpdateBatch::new();
        b1.insert("S", Value::atom(10));
        let mut b2 = UpdateBatch::new();
        b2.insert("S", Value::atom(11));
        let mut b3 = UpdateBatch::new();
        b3.insert("S", Value::atom(12));
        server.try_submit(&b1).expect("b1 fits");
        server.try_submit(&b2).expect("b2 fits");
        let err = server.try_submit(&b3).unwrap_err();
        assert!(
            matches!(err, NrsError::Backpressure { capacity: 2 }),
            "got {err}"
        );
        assert!(err.is_transient() && err.is_backpressure() && !err.is_rejection());
        assert_eq!(server.pending_len(), 2, "the refused batch was not queued");
        // a flush drains the queue; the batch fits afterwards
        server.flush().expect("flush");
        server.try_submit(&b3).expect("b3 fits after flush");
        server.flush().expect("flush b3");
        assert_eq!(server.epoch(), 2);
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn blocking_submit_waits_for_space_instead_of_failing() {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        let config = ServerConfig {
            queue_capacity: 1,
            ..ServerConfig::default()
        };
        let server =
            Arc::new(ViewServer::with_config(&result, &small_base(), config).expect("server"));
        let mut b1 = UpdateBatch::new();
        b1.insert("S", Value::atom(10));
        let mut b2 = UpdateBatch::new();
        b2.insert("S", Value::atom(11));
        server.submit(&b1).expect("b1 fits");
        // the queue is full: submit(b2) must block until a flush drains it
        let producer = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.submit(&b2))
        };
        // flush repeatedly until the producer's batch lands and is flushed
        // (the producer may enqueue just after a drain)
        loop {
            server.flush().expect("flush");
            if producer.is_finished() && server.pending_len() == 0 {
                break;
            }
            std::thread::yield_now();
        }
        producer
            .join()
            .expect("join")
            .expect("blocked submit succeeds");
        server.flush().expect("final flush");
        let snap = server.snapshot();
        let s = snap.base().try_get(&Name::new("S")).expect("S");
        let s = s.as_set().expect("set");
        assert!(s.contains(&Value::atom(10)) && s.contains(&Value::atom(11)));
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn max_batch_bounds_one_flush_and_the_rest_stays_queued() {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        let config = ServerConfig {
            max_batch: 2,
            ..ServerConfig::default()
        };
        let server = ViewServer::with_config(&result, &small_base(), config).expect("server");
        for i in 0..5u64 {
            let mut b = UpdateBatch::new();
            b.insert("S", Value::atom(100 + i));
            server.submit(&b).expect("submit");
        }
        let report = server.flush().expect("flush");
        assert_eq!(report.batches, 2);
        assert_eq!(server.pending_len(), 3, "drained only max_batch");
        assert_eq!(server.epoch(), 1);
        // three more flushes drain the rest
        assert_eq!(server.flush().expect("flush").batches, 2);
        assert_eq!(server.flush().expect("flush").batches, 1);
        assert_eq!(server.flush().expect("flush").batches, 0);
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn writer_thread_drains_producers_end_to_end() {
        let (result, base) = setup(30, 5);
        let config = ServerConfig {
            batch_window: Duration::from_millis(1),
            ..ServerConfig::default()
        };
        let server = Arc::new(ViewServer::with_config(&result, &base, config).expect("server"));
        let handle = server.start();
        let mut producers = Vec::new();
        for p in 0..3u64 {
            let server = Arc::clone(&server);
            producers.push(std::thread::spawn(move || {
                for i in 0..10u64 {
                    let mut b = UpdateBatch::new();
                    // disjoint fresh tuples per producer: exact under any
                    // interleaving
                    b.insert("S", Value::atom(10_000 + p * 100 + i));
                    server.submit(&b).expect("submit");
                }
            }));
        }
        for t in producers {
            t.join().expect("producer");
        }
        let stats = handle.stop();
        assert_eq!(server.pending_len(), 0, "stop drains the queue");
        assert_eq!(stats.batches, 30, "every submitted batch was flushed");
        assert_eq!(stats.updates, 30);
        assert!(stats.flushes >= 1 && stats.flushes <= 30);
        assert!(stats.errors == 0, "clean run: {:?}", stats.last_error);
        let snap = server.snapshot();
        assert_eq!(snap.epoch, stats.flushes);
        let s = snap.base().try_get(&Name::new("S")).expect("S");
        let s = s.as_set().expect("set");
        for p in 0..3u64 {
            for i in 0..10u64 {
                assert!(s.contains(&Value::atom(10_000 + p * 100 + i)));
            }
        }
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn sharded_workers_report_counters_and_agree_with_sequential() {
        let (result, base) = setup(40, 9);
        let sequential = ViewServer::new(&result, &base).expect("sequential");
        let config = ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        };
        let sharded = ViewServer::with_config(&result, &base, config).expect("sharded");
        let mut batch = UpdateBatch::new();
        for i in 0..8u64 {
            batch.insert("S", Value::atom(9100 + i));
        }
        batch.insert("F", Value::atom(9100));
        let seq = sequential.apply(&batch).expect("sequential apply");
        let par = sharded.apply(&batch).expect("sharded apply");
        assert_eq!(seq.snapshot.answer(), par.snapshot.answer());
        assert_eq!(seq.answer_delta, par.answer_delta);
        assert_eq!(par.workers, 3);
        assert_eq!(seq.workers, 1);
        assert!(
            par.maint.parallel_rounds > 0,
            "an 9-tuple batch fans out: {:?}",
            par.maint
        );
        assert!(par.maint.shards_dispatched > par.maint.parallel_rounds);
        assert_eq!(
            seq.maint.parallel_rounds, 0,
            "one worker never dispatches: {:?}",
            seq.maint
        );
        assert!(sharded.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn dropped_batches_are_counted_with_the_triggering_error() {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        let server = ViewServer::new(&result, &small_base()).expect("server");
        assert_eq!(server.dropped_batches(), 0);
        assert!(server.last_drop_error().is_none());
        // two schema-valid batches whose coalesced net fails exactness (1 is
        // already a member): the whole drained prefix is dropped — and must
        // be accounted for, not silently vanish
        let mut dup = UpdateBatch::new();
        dup.insert("S", Value::atom(1));
        let mut fine = UpdateBatch::new();
        fine.insert("S", Value::atom(50));
        server.submit(&dup).expect("schema-valid");
        server.submit(&fine).expect("schema-valid");
        let err = server.flush().unwrap_err();
        assert!(err.is_rejection(), "got {err}");
        assert_eq!(server.dropped_batches(), 2, "both drained batches dropped");
        let cause = server.last_drop_error().expect("drop cause retained");
        assert!(
            matches!(cause, NrsError::Rejected(IvmError::DuplicateInsert { .. })),
            "got {cause}"
        );
        // the innocent bystander was dropped too — resubmitting it works,
        // and a successful flush reports the lifetime drop count
        server.submit(&fine).expect("resubmit");
        let report = server.flush().expect("flush");
        assert_eq!(report.dropped_batches, 2);
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn writer_stats_count_dropped_batches() {
        let problem = partition_problem();
        let result = problem
            .derive_rewriting(&SynthesisConfig::default())
            .expect("rewriting exists");
        let server = Arc::new(ViewServer::new(&result, &small_base()).expect("server"));
        let mut dup = UpdateBatch::new();
        dup.insert("S", Value::atom(1));
        server.submit(&dup).expect("schema-valid");
        let handle = server.start();
        let stats = handle.stop();
        assert_eq!(server.pending_len(), 0, "the bad batch is gone");
        assert_eq!(stats.dropped_batches, 1, "and the writer accounted for it");
        assert!(stats.errors >= 1);
        assert!(
            matches!(stats.last_error, Some(NrsError::Rejected(_))),
            "got {:?}",
            stats.last_error
        );
        assert_eq!(server.epoch(), 0, "nothing was applied");
        assert!(server.cross_check(&result).expect("oracle"));
    }

    #[test]
    fn metrics_snapshot_reports_the_whole_pipeline() {
        // derive_rewriting exercises the prover + synthesis, the server
        // flush exercises the IVM engine and the serving layer: one
        // snapshot must report all of them (shared global registry).
        let (result, base) = setup(20, 7);
        let server = ViewServer::new(&result, &base).expect("server");
        let mut batch = UpdateBatch::new();
        batch.insert("S", Value::atom(7777));
        batch.insert("F", Value::atom(7777));
        server.apply(&batch).expect("apply");
        let snap = server.metrics_snapshot();
        assert!(snap.counter("prover.goals_total").unwrap_or(0) > 0);
        assert!(snap.counter("synth.runs_total").unwrap_or(0) > 0);
        assert!(snap.counter("ivm.applies_total").unwrap_or(0) > 0);
        assert!(snap.counter("serve.flushes_total").unwrap_or(0) > 0);
        assert_eq!(snap.gauge("serve.queue_depth"), Some(0));
        assert!(snap.gauge("serve.epoch").unwrap_or(0) >= 1);
        let flush = snap.histogram("serve.flush_seconds").expect("timer");
        assert!(flush.count > 0 && flush.quantile(0.99) >= flush.quantile(0.50));
        // and the Prometheus rendering carries the same families
        let text = server.metrics_text();
        for family in [
            "# TYPE nrs_prover_goals_total counter",
            "# TYPE nrs_ivm_applies_total counter",
            "# TYPE nrs_serve_flushes_total counter",
            "# TYPE nrs_serve_flush_seconds histogram",
            "nrs_serve_flush_seconds_bucket{le=\"+Inf\"}",
        ] {
            assert!(text.contains(family), "missing {family:?} in:\n{text}");
        }
    }

    #[test]
    fn workload_server_publishes_named_answers_in_one_epoch() {
        let problem = nrs_synthesis::overlapping_workload_problem(4);
        let rewriting = problem
            .derive_workload(&SynthesisConfig::default())
            .expect("workload rewriting exists");
        let base = partition_instance(20, 13);
        let server = ViewServer::serve_workload(&rewriting, &base).expect("server");
        let snap = server.snapshot();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.answers().len(), 4, "one named answer per query");
        // Q0 and Q3 are the same query: identical answers from the shared view
        assert_eq!(
            snap.answer_named(&Name::new("Q0")),
            snap.answer_named(&Name::new("Q3"))
        );
        assert!(snap.answer_named(&Name::new("Nope")).is_none());
        // one batch updates every answer at the same epoch
        let mut batch = UpdateBatch::new();
        batch.insert("S", Value::atom(8888));
        batch.insert("F", Value::atom(8888));
        let report = server.apply(&batch).expect("apply");
        assert_eq!(report.snapshot.epoch, 1);
        assert_eq!(report.answer_deltas.len(), 4);
        // Q0 (all of S) and Q1 (S ∩ F) both gained the new member
        for q in ["Q0", "Q1", "Q3"] {
            let (_, delta) = report
                .answer_deltas
                .iter()
                .find(|(n, _)| n == &Name::new(q))
                .expect("delta present");
            assert!(
                delta.inserts.contains(&Value::atom(8888)),
                "{q} delta: {delta:?}"
            );
        }
        assert_eq!(report.answer_delta, report.answer_deltas[0].1);
        assert!(server.cross_check_workload(&rewriting).expect("oracle"));
        // coverage is reported per query, with the shared fragments visible
        let wc = server.workload_coverage().expect("workload server");
        assert_eq!(wc.answers.len(), 4);
        assert!(!wc.shared.is_empty(), "the fixture shares a fragment");
        assert!(wc.fully_incremental());
        // the single-query cross_check refuses a workload server
        let err = server
            .cross_check(
                &partition_problem()
                    .derive_rewriting(&SynthesisConfig::default())
                    .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, NrsError::Internal(_)), "got {err}");
    }

    #[test]
    fn workload_server_with_writer_thread_converges() {
        let problem = nrs_synthesis::overlapping_workload_problem(2);
        let rewriting = problem
            .derive_workload(&SynthesisConfig::default())
            .expect("workload rewriting exists");
        let base = partition_instance(16, 21);
        let (server, writer) = ViewServer::builder()
            .batch_window(Duration::from_millis(1))
            .spawn_workload(&rewriting, &base)
            .expect("spawn");
        for i in 0..12u64 {
            let mut b = UpdateBatch::new();
            b.insert("S", Value::atom(30_000 + i));
            server.submit(&b).expect("submit");
        }
        let stats = writer.stop();
        assert_eq!(stats.batches, 12);
        assert_eq!(server.pending_len(), 0);
        assert!(server.cross_check_workload(&rewriting).expect("oracle"));
        let snap = server.snapshot();
        for (name, _) in rewriting.queries() {
            assert!(snap.answer_named(name).is_some(), "answer {name} published");
        }
    }

    #[test]
    fn builder_path_matches_legacy_constructors() {
        let (result, base) = setup(14, 2);
        let legacy = ViewServer::with_config(
            &result,
            &base,
            ServerConfig {
                workers: 2,
                max_batch: 8,
                ..ServerConfig::default()
            },
        )
        .expect("legacy");
        let fluent = ViewServer::builder()
            .workers(2)
            .max_batch(8)
            .serve(&result, &base)
            .expect("fluent");
        assert_eq!(legacy.config().workers, fluent.config().workers);
        assert_eq!(legacy.config().max_batch, fluent.config().max_batch);
        assert_eq!(legacy.snapshot().answer(), fluent.snapshot().answer());
        assert_eq!(
            legacy.snapshot().answers().len(),
            fluent.snapshot().answers().len()
        );
    }

    #[test]
    fn error_taxonomy_maps_prover_outcomes() {
        let timeout: NrsError = SynthesisError::ProofNotFound {
            purpose: "test".into(),
            error: ProofError::Timeout {
                elapsed_ms: 12,
                visited: 34,
            },
        }
        .into();
        assert!(
            matches!(
                timeout,
                NrsError::Timeout {
                    elapsed_ms: 12,
                    visited: 34
                }
            ),
            "got {timeout}"
        );
        assert!(timeout.is_transient());
        let budget: NrsError = SynthesisError::ProofNotFound {
            purpose: "test".into(),
            error: ProofError::BudgetExhausted("max_states=5".into()),
        }
        .into();
        assert!(
            matches!(budget, NrsError::BudgetExhausted(_)),
            "got {budget}"
        );
        assert!(!budget.is_transient());
        let cancelled: NrsError = SynthesisError::ProofNotFound {
            purpose: "test".into(),
            error: ProofError::Cancelled,
        }
        .into();
        assert!(matches!(cancelled, NrsError::Cancelled), "got {cancelled}");
        assert!(cancelled.is_transient());
    }
}
