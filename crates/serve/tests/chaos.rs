//! Chaos testing of the serving layer: inject a fault at **every** site a
//! submit+flush round reaches — the server's own lock/publish points plus
//! every operator delta rule underneath — and assert, per site:
//!
//! 1. a failed round leaves the published snapshot on the old epoch with
//!    the old answer (readers never observe a partial batch),
//! 2. the server stays internally consistent (the naive oracle agrees),
//! 3. the retried batch converges to the reference answer — possibly
//!    through a degraded plan, never through a corrupt one.
//!
//! Fault plans are thread-local, so only the writer is faulted; a reader
//! holding a snapshot is structurally unaffected.

#![cfg(feature = "fault-injection")]

use nrs_ivm::fault::{FaultPlan, FaultScope};
use nrs_serve::{ServerConfig, ViewServer};
use nrs_synthesis::views::partition_problem;
use nrs_synthesis::{RewritingResult, SynthesisConfig, UpdateBatch};
use nrs_value::{Instance, Name, Value};
use std::collections::BTreeSet;

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        ..ServerConfig::default()
    }
}

fn base() -> Instance {
    let s: BTreeSet<Value> = [1u64, 2, 3, 4].into_iter().map(Value::atom).collect();
    let f: BTreeSet<Value> = [2u64, 4].into_iter().map(Value::atom).collect();
    Instance::from_bindings([
        (Name::new("S"), Value::from_set(s)),
        (Name::new("F"), Value::from_set(f)),
    ])
}

fn batch() -> UpdateBatch {
    let mut b = UpdateBatch::new();
    b.insert("S", Value::atom(10));
    b.insert("F", Value::atom(10));
    b.delete("S", Value::atom(1));
    b
}

fn rewriting() -> RewritingResult {
    partition_problem()
        .derive_rewriting(&SynthesisConfig::default())
        .expect("rewriting exists")
}

/// A wider batch (several fresh members per relation) so sharded servers
/// get delta rounds with >= 2 items, which is what makes the engine fan
/// out across workers and reach the `ivm.shard.*` sites.
fn wide_batch() -> UpdateBatch {
    let mut b = UpdateBatch::new();
    for i in 0..4u64 {
        b.insert("S", Value::atom(10 + i));
    }
    b.insert("F", Value::atom(10));
    b.delete("S", Value::atom(1));
    b
}

/// Discovery pass: how many instrumented sites does one submit+flush
/// round reach on a server built with `config`?
fn discovery(
    result: &RewritingResult,
    base: &Instance,
    config: ServerConfig,
    batch: &UpdateBatch,
) -> u64 {
    let server = ViewServer::with_config(result, base, config).expect("server");
    let scope = FaultScope::new(FaultPlan::count_only());
    server.apply(batch).expect("clean apply under count_only");
    scope.hits()
}

/// Run the full discovery-then-inject sweep against servers built with
/// `config` (notably: sequential vs sharded-parallel maintenance).
fn sweep_every_reachable_site(config: ServerConfig, batch: &UpdateBatch) {
    let result = rewriting();
    let base = base();
    let batch = batch.clone();

    // the reference answer a fault-free server publishes for this batch
    let reference = ViewServer::new(&result, &base).expect("reference server");
    let want = reference.apply(&batch).expect("clean apply").snapshot;
    assert_eq!(want.epoch, 1);

    let hits = discovery(&result, &base, config.clone(), &batch);
    // at minimum: the ingest point, the flush lock and the publish point
    assert!(hits >= 3, "expected >= 3 sites, found {hits}");

    for n in 0..hits {
        let server = ViewServer::with_config(&result, &base, config.clone()).expect("server");
        // a reader takes a snapshot before the faulted round
        let reader = server.snapshot();
        let outcome = {
            let _scope = FaultScope::new(FaultPlan::fail_nth(n));
            server.submit(&batch).and_then(|()| server.flush())
        };
        match outcome {
            Ok(report) => {
                // the fault hit an operator; self-healing degraded it and
                // retried through the degraded plan within the same flush
                assert_eq!(report.snapshot.epoch, 1, "site {n}");
                assert!(
                    !report.degraded.is_empty(),
                    "site {n}: a fault fired but nothing was degraded"
                );
                assert_eq!(
                    report.snapshot.answer(),
                    want.answer(),
                    "site {n}: degraded plan diverged"
                );
            }
            Err(e) => {
                // the round failed outright: readers keep the old epoch
                assert_eq!(server.epoch(), 0, "site {n}: partial epoch published");
                assert_eq!(
                    server.snapshot().answer(),
                    reader.answer(),
                    "site {n}: published answer changed without an epoch"
                );
                assert!(
                    !e.is_rejection(),
                    "site {n}: injected fault misclassified as a validation rejection: {e}"
                );
                // recovery: transiently-failed flushes re-queue the drained
                // batches, and a lock-site fault never drains — only an
                // ingest-site fault leaves nothing queued; resubmit then
                if server.pending_len() == 0 {
                    server.submit(&batch).expect("resubmit");
                }
                let report = server.flush().expect("clean retry");
                assert_eq!(report.snapshot.epoch, 1, "site {n}");
                assert_eq!(
                    report.snapshot.answer(),
                    want.answer(),
                    "site {n}: recovered server diverged"
                );
            }
        }
        // the reader's snapshot was never touched
        assert_eq!(reader.epoch, 0);
        assert!(
            server.cross_check(&result).expect("oracle"),
            "site {n}: live state disagrees with the naive oracle"
        );
    }
}

#[test]
fn chaos_every_reachable_site_keeps_readers_on_a_complete_epoch() {
    sweep_every_reachable_site(config(1), &batch());
}

/// The same sweep with sharded-parallel maintenance: the shard dispatch
/// and merge sites join the reachable set, and every one of them must
/// still roll back to a complete epoch and converge on retry.
#[test]
fn chaos_sharded_workers_sweep_keeps_readers_on_a_complete_epoch() {
    let result = rewriting();
    let base = base();
    let wide = wide_batch();
    let hits_seq = discovery(&result, &base, config(1), &wide);
    let hits_par = discovery(&result, &base, config(3), &wide);
    assert!(
        hits_par > hits_seq,
        "sharding added no sites ({hits_seq} sequential vs {hits_par} sharded)"
    );
    sweep_every_reachable_site(config(3), &wide);
}

/// Observability under chaos: a flush that fails at the **publish** site —
/// the rollback path — must still emit a *complete* span tree: every span
/// started on the flushing thread is ended (the early-return paths drop
/// their spans), the stage spans are children of `serve.flush`, and an
/// `Error` event is attached to the failed flush span.
#[test]
fn chaos_failed_flush_emits_a_complete_span_tree_with_an_error_event() {
    use nrs_ivm::fault;
    use nrs_obs::{CaptureSink, EventKind, FieldValue};
    use std::collections::BTreeSet as Set;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let result = rewriting();
    let base = base();
    let batch = batch();
    let sink = Arc::new(CaptureSink::new());
    nrs_obs::install_sink(sink.clone());

    // there is no fail-at-named-site plan: count the reachable sites, then
    // fault each ordinal until the publish site is the one that fires
    let hits = discovery(&result, &base, config(1), &batch);
    let mut publish_checked = false;
    for n in 0..hits {
        let server = ViewServer::with_config(&result, &base, config(1)).expect("server");
        sink.clear();
        // a unique marker identifies this thread's events in the global
        // sink (concurrent tests emit their own spans into it)
        static NONCE: AtomicU64 = AtomicU64::new(1);
        let nonce = NONCE.fetch_add(1, Ordering::Relaxed);
        nrs_obs::event("chaos.marker", vec![("nonce", nonce.into())]);
        let fired;
        let outcome = {
            let _scope = FaultScope::new(FaultPlan::fail_nth(n));
            let out = server.submit(&batch).and_then(|()| server.flush());
            fired = fault::fired();
            out
        };
        if fired != Some("serve.publish") {
            continue;
        }
        assert!(outcome.is_err(), "a publish-site fault must fail the flush");
        let events = sink.events();
        let me = events
            .iter()
            .find(|e| {
                e.name == "chaos.marker"
                    && e.fields
                        .iter()
                        .any(|(k, v)| *k == "nonce" && *v == FieldValue::U64(nonce))
            })
            .expect("marker event captured")
            .thread_id;
        let mine: Vec<_> = events.into_iter().filter(|e| e.thread_id == me).collect();
        // complete tree: every span started was ended, with a duration
        let started: Set<u64> = mine
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart)
            .map(|e| e.span_id)
            .collect();
        let ended: Set<u64> = mine
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .map(|e| e.span_id)
            .collect();
        assert_eq!(started, ended, "unbalanced span tree after a failed flush");
        assert!(mine
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .all(|e| e.elapsed_ns.is_some()));
        // the stage spans hang off the flush span...
        let flush_id = mine
            .iter()
            .find(|e| e.kind == EventKind::SpanStart && e.name == "serve.flush")
            .expect("flush span started")
            .span_id;
        let children: Set<&str> = mine
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart && e.parent_id == Some(flush_id))
            .map(|e| e.name)
            .collect();
        for stage in [
            "serve.drain",
            "serve.coalesce",
            "serve.maintain",
            "serve.publish",
        ] {
            assert!(children.contains(stage), "missing child span {stage:?}");
        }
        // ...and the failure surfaced as an error event on that span
        assert!(
            mine.iter().any(|e| e.kind == EventKind::Error
                && e.name == "serve.flush_failed"
                && e.span_id == flush_id),
            "no error event attached to the failed flush span"
        );
        publish_checked = true;
        break;
    }
    assert!(
        publish_checked,
        "publish fault site never fired in {hits} sites"
    );
}

/// The seeded convenience plan exercises the same protocol end-to-end: any
/// seed maps to some reachable site, and the server must recover from it.
#[test]
fn chaos_seeded_plans_always_recover() {
    let result = rewriting();
    let base = base();
    let batch = batch();
    let reference = ViewServer::new(&result, &base).expect("reference server");
    let want = reference.apply(&batch).expect("clean apply").snapshot;
    let hits = {
        let server = ViewServer::new(&result, &base).expect("server");
        let scope = FaultScope::new(FaultPlan::count_only());
        server.apply(&batch).expect("clean apply");
        scope.hits()
    };
    for seed in [0u64, 7, 42, 1_000_003, u64::MAX] {
        let server = ViewServer::new(&result, &base).expect("server");
        let outcome = {
            let _scope = FaultScope::new(FaultPlan::seeded(seed, hits));
            server.submit(&batch).and_then(|()| server.flush())
        };
        if outcome.is_err() {
            if server.pending_len() == 0 {
                server.submit(&batch).expect("resubmit");
            }
            server.flush().expect("clean retry");
        }
        assert_eq!(server.epoch(), 1, "seed {seed}");
        assert_eq!(server.snapshot().answer(), want.answer(), "seed {seed}");
        assert!(server.cross_check(&result).expect("oracle"), "seed {seed}");
    }
}
