//! End-to-end stress of the serving pipeline: many producers submitting
//! through the bounded ingest queue, the dedicated batching writer thread
//! draining it with sharded-parallel maintenance, and concurrent readers
//! taking snapshots throughout — checked against the naive oracle and a
//! reference server that applies everything as one batch.

use nrs_serve::{NrsError, ServerConfig, ViewServer};
use nrs_synthesis::views::{partition_instance, partition_problem};
use nrs_synthesis::{RewritingResult, SynthesisConfig, UpdateBatch};
use nrs_value::{Name, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PRODUCERS: u64 = 4;
const BATCHES_PER_PRODUCER: u64 = 25;

fn rewriting() -> RewritingResult {
    partition_problem()
        .derive_rewriting(&SynthesisConfig::default())
        .expect("rewriting exists")
}

/// A fresh tuple no producer shares and no base instance contains, so
/// every interleaving of the producers stays exact.
fn fresh(producer: u64, i: u64) -> Value {
    Value::atom(1_000_000 + producer * 1_000 + i)
}

#[test]
fn many_producers_one_writer_converge_to_the_oracle() {
    let result = rewriting();
    let base = partition_instance(50, 7);
    // a deliberately tight pipeline: tiny queue so producers feel
    // backpressure, small flushes, sharded maintenance
    let config = ServerConfig {
        queue_capacity: 8,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        workers: 2,
    };
    let server = Arc::new(ViewServer::with_config(&result, &base, config).expect("server"));
    let writer = server.start();

    // readers: snapshots must always be complete epochs with monotonically
    // non-decreasing epoch numbers, whatever the writer is doing
    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..2 {
        let server = Arc::clone(&server);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut last = 0u64;
            let mut seen = 0u64;
            while !done.load(Ordering::SeqCst) {
                let snap = server.snapshot();
                assert!(snap.epoch >= last, "epoch went backwards");
                last = snap.epoch;
                seen += 1;
                std::thread::yield_now();
            }
            seen
        }));
    }

    // producers: half blocking submit, half try_submit with a retry loop
    // on backpressure
    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let server = Arc::clone(&server);
        producers.push(std::thread::spawn(move || {
            let mut backpressured = 0u64;
            for i in 0..BATCHES_PER_PRODUCER {
                let mut b = UpdateBatch::new();
                b.insert("S", fresh(p, i));
                if p % 2 == 0 {
                    server.submit(&b).expect("blocking submit");
                } else {
                    loop {
                        match server.try_submit(&b) {
                            Ok(()) => break,
                            Err(e @ NrsError::Backpressure { .. }) => {
                                assert!(e.is_backpressure() && e.is_transient());
                                backpressured += 1;
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                }
            }
            backpressured
        }));
    }
    for t in producers {
        t.join().expect("producer");
    }

    let stats = writer.stop();
    done.store(true, Ordering::SeqCst);
    for r in readers {
        assert!(r.join().expect("reader") > 0, "reader never ran");
    }

    let total = PRODUCERS * BATCHES_PER_PRODUCER;
    assert_eq!(server.pending_len(), 0, "stop drains the queue");
    assert_eq!(stats.batches, total, "every batch flushed exactly once");
    assert_eq!(stats.updates, total, "no tuple lost or duplicated");
    assert_eq!(stats.errors, 0, "clean run: {:?}", stats.last_error);
    assert!(
        stats.flushes >= total / 4,
        "max_batch=4 caps coalescing: {} flushes",
        stats.flushes
    );

    // the final snapshot holds every produced tuple...
    let snap = server.snapshot();
    assert_eq!(snap.epoch, stats.flushes);
    let s = snap.base().try_get(&Name::new("S")).expect("S");
    let s = s.as_set().expect("set");
    for p in 0..PRODUCERS {
        for i in 0..BATCHES_PER_PRODUCER {
            assert!(s.contains(&fresh(p, i)), "lost tuple {p}/{i}");
        }
    }
    // ...the live engine agrees with the naive oracle...
    assert!(server.cross_check(&result).expect("oracle"));
    // ...and with a sequential reference server applying one big batch
    let reference = ViewServer::new(&result, &base).expect("reference");
    let mut all = UpdateBatch::new();
    for p in 0..PRODUCERS {
        for i in 0..BATCHES_PER_PRODUCER {
            all.insert("S", fresh(p, i));
        }
    }
    let want = reference.apply(&all).expect("reference apply");
    assert_eq!(snap.answer(), want.snapshot.answer(), "pipeline diverged");
    assert_eq!(snap.base(), want.snapshot.base());
}

#[test]
fn flush_reports_attribute_engine_rounds_to_the_flush() {
    let result = rewriting();
    let base = partition_instance(40, 3);
    let config = ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    };
    let server = ViewServer::with_config(&result, &base, config).expect("server");
    let mut batch = UpdateBatch::new();
    for i in 0..6u64 {
        batch.insert("S", Value::atom(2_000_000 + i));
    }
    let first = server.apply(&batch).expect("first apply");
    assert_eq!(first.workers, 3);
    assert!(
        first.maint.rounds > 0,
        "no rounds attributed: {:?}",
        first.maint
    );
    assert!(
        first.maint.parallel_rounds > 0,
        "6 fresh members must fan out: {:?}",
        first.maint
    );
    assert!(first.maint.sharded_items >= 6);
    // an empty flush attributes nothing
    let empty = server.flush().expect("empty flush");
    assert_eq!(empty.maint, nrs_synthesis::MaintStats::default());
    assert_eq!(empty.batches, 0);
    // the cumulative view keeps growing while per-flush deltas reset
    assert_eq!(server.maint_stats(), first.maint);
}
