//! Chaos testing of the **pipelined** writer thread: the fault plans used
//! by `tests/chaos.rs` are thread-local and never reach the dedicated
//! batching writer, so this harness arms the *process-global* plan
//! (`nrs_ivm::fault::GlobalFaultScope`) instead and shadows the test
//! thread with a local count-only plan.  Every site the writer thread
//! reaches — its own cycle hook, the flush lock, the coalescer, the engine
//! delta rules, the publish point — is failed once, and per site the
//! pipeline must:
//!
//! 1. keep readers on the old complete epoch while the fault is live,
//! 2. re-queue (or keep) the submitted batch so the writer's next cycle
//!    retries it without the producer resubmitting,
//! 3. converge to the reference answer, possibly through a degraded plan.
//!
//! This lives in its own test binary: the global plan is process-wide, so
//! it must not run concurrently with other fault-injection tests.

#![cfg(feature = "fault-injection")]

use nrs_ivm::fault::{FaultPlan, FaultScope, GlobalFaultScope};
use nrs_serve::{NrsError, ServerConfig, ViewServer, SHUTDOWN_DRAIN_FAILURES};
use nrs_synthesis::views::partition_problem;
use nrs_synthesis::{RewritingResult, SynthesisConfig, UpdateBatch};
use nrs_value::{Instance, Name, Value};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The process-global fault plan is exactly that — process-wide — so the
/// tests in this binary that arm it must not overlap even when the harness
/// runs them on concurrent threads.
static GLOBAL_PLAN_GATE: Mutex<()> = Mutex::new(());

fn base() -> Instance {
    let s: BTreeSet<Value> = [1u64, 2, 3, 4].into_iter().map(Value::atom).collect();
    let f: BTreeSet<Value> = [2u64, 4].into_iter().map(Value::atom).collect();
    Instance::from_bindings([
        (Name::new("S"), Value::from_set(s)),
        (Name::new("F"), Value::from_set(f)),
    ])
}

/// Several fresh members so the sharded engine fans out inside the writer.
fn batch() -> UpdateBatch {
    let mut b = UpdateBatch::new();
    for i in 0..3u64 {
        b.insert("S", Value::atom(10 + i));
    }
    b.insert("F", Value::atom(10));
    b.delete("S", Value::atom(1));
    b
}

fn rewriting() -> RewritingResult {
    partition_problem()
        .derive_rewriting(&SynthesisConfig::default())
        .expect("rewriting exists")
}

fn config() -> ServerConfig {
    ServerConfig {
        batch_window: Duration::from_millis(1),
        workers: 2,
        ..ServerConfig::default()
    }
}

/// Block until the server publishes `epoch`, or panic after 30s.
fn await_epoch(server: &ViewServer, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.epoch() < epoch {
        assert!(
            Instant::now() < deadline,
            "writer never published epoch {epoch} (stuck at {})",
            server.epoch()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn chaos_writer_thread_recovers_from_every_site_it_reaches() {
    let _gate = GLOBAL_PLAN_GATE.lock().unwrap_or_else(|p| p.into_inner());
    let result = rewriting();
    let base = base();
    let batch = batch();

    // the reference answer a fault-free pipeline publishes for this batch
    let reference = ViewServer::new(&result, &base).expect("reference server");
    let want = reference.apply(&batch).expect("clean apply").snapshot;
    assert_eq!(want.epoch, 1);

    // discovery: shadow this thread (submit's ingest hook counts locally),
    // then count every site the *writer thread* reaches for one batch
    let hits = {
        let server = Arc::new(ViewServer::with_config(&result, &base, config()).expect("server"));
        let _shadow = FaultScope::new(FaultPlan::count_only());
        let global = GlobalFaultScope::new(FaultPlan::count_only());
        let writer = server.start();
        server.submit(&batch).expect("submit");
        await_epoch(&server, 1);
        let stats = writer.stop();
        assert_eq!(stats.errors, 0, "clean run: {:?}", stats.last_error);
        assert_eq!(server.snapshot().answer(), want.answer());
        global.hits()
    };
    // at minimum: the writer-cycle hook, the flush lock, the coalescer and
    // the publish point
    assert!(hits >= 4, "expected >= 4 writer-side sites, found {hits}");

    for n in 0..hits {
        let server = Arc::new(ViewServer::with_config(&result, &base, config()).expect("server"));
        let reader = server.snapshot();
        let _shadow = FaultScope::new(FaultPlan::count_only());
        let _global = GlobalFaultScope::new(FaultPlan::fail_nth(n));
        let writer = server.start();
        server.submit(&batch).expect("submit");
        // whatever the writer hit, it must converge without a resubmit:
        // transient flush failures re-queue the drained batches, a cycle
        // fault fires before the drain, and operator faults self-heal
        await_epoch(&server, 1);
        let stats = writer.stop();
        assert_eq!(
            server.snapshot().answer(),
            want.answer(),
            "site {n}: pipeline diverged (writer stats {stats:?})"
        );
        assert_eq!(server.pending_len(), 0, "site {n}: batch left queued");
        // the reader's pre-fault snapshot was never touched
        assert_eq!(reader.epoch, 0, "site {n}");
        assert!(
            server.cross_check(&result).expect("oracle"),
            "site {n}: live state disagrees with the naive oracle"
        );
    }
}

/// A flush that fails on **every** retry must not turn `WriterHandle::stop`
/// into an indefinitely blocking busy-loop: the stopping writer gives up
/// after `SHUTDOWN_DRAIN_FAILURES` consecutive failed cycles, leaves the
/// batch queued (not lost), reports the errors — and once the fault clears,
/// a manual flush converges without a resubmit.
#[test]
fn chaos_stop_gives_up_on_a_persistently_failing_flush() {
    let _gate = GLOBAL_PLAN_GATE.lock().unwrap_or_else(|p| p.into_inner());
    let result = rewriting();
    let base = base();
    let batch = batch();
    let server = Arc::new(ViewServer::with_config(&result, &base, config()).expect("server"));
    let _shadow = FaultScope::new(FaultPlan::count_only());
    // every writer-side hit fails, starting with the very first: the
    // writer-cycle hook fires before anything is drained, so the batch
    // survives in the queue while every flush cycle fails
    let global = GlobalFaultScope::new(FaultPlan::fail_from(0));
    let writer = server.start();
    server.submit(&batch).expect("submit");
    // let the writer burn a few failing cycles before asking it to stop
    let deadline = Instant::now() + Duration::from_secs(30);
    while global.hits() < SHUTDOWN_DRAIN_FAILURES {
        assert!(Instant::now() < deadline, "writer never cycled");
        std::thread::sleep(Duration::from_millis(1));
    }
    // stop() must return despite the flush never succeeding; a watchdog
    // join guards against a regression to the unbounded drain
    let stopper = std::thread::spawn(move || writer.stop());
    let deadline = Instant::now() + Duration::from_secs(30);
    while !stopper.is_finished() {
        assert!(
            Instant::now() < deadline,
            "stop() blocked on a persistently failing flush"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = stopper.join().expect("stopper");
    assert!(
        stats.errors >= SHUTDOWN_DRAIN_FAILURES,
        "every cycle failed: {stats:?}"
    );
    assert!(
        matches!(stats.last_error, Some(NrsError::Maintenance(_))),
        "injected faults surface as maintenance errors: {stats:?}"
    );
    assert_eq!(stats.flushes, 0, "no flush ever succeeded: {stats:?}");
    assert_eq!(
        server.pending_len(),
        1,
        "the batch is left queued, not lost"
    );
    assert_eq!(server.epoch(), 0, "readers stayed on the old epoch");
    drop(global);
    // the fault cleared: the queued batch applies without a resubmit
    let report = server.flush().expect("flush after the fault clears");
    assert_eq!(report.snapshot.epoch, 1);
    assert_eq!(report.batches, 1);
    assert_eq!(server.pending_len(), 0);
    assert!(server.cross_check(&result).expect("oracle"));
}
