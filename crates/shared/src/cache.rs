//! A sharded, poison-recovering concurrent hash map for identity-keyed
//! caches.
//!
//! The prover keeps several session-lifetime caches keyed by interned syntax
//! nodes — specialization enumerations, ≠-rewrite candidates, refuted search
//! states.  All of them share a profile: keys hash in O(1) (the nodes cache
//! their hashes), probes vastly outnumber inserts, and several search workers
//! may probe concurrently.  A single `Mutex<HashMap>` serializes those
//! probes; [`ShardedMap`] splits the key space across `RwLock`-protected
//! shards instead, so concurrent readers of different keys (and even the same
//! key) proceed in parallel and writers only exclude their own shard.
//!
//! Lock poisoning is **recovered**, not propagated: a worker that panics
//! mid-insert leaves at worst an absent or stale cache entry, never a torn
//! one (entries are inserted whole), so later workers can safely keep using
//! the map — the same policy the prover already applied to its mutex-guarded
//! caches.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Number of shards; a power of two so the shard index is a mask of the
/// key's hash.  32 matches the intern tables: enough to make cross-worker
/// collisions rare at the session's worker counts without bloating the
/// per-map footprint.
const SHARDS: usize = 32;

/// A fast multiply-rotate hasher (the FxHash construction) for the cache
/// keys.  The keys are interned nodes whose `Hash` writes out a few cached
/// 64-bit structural hashes, so the per-probe cost is dominated by the
/// hasher's fixed overhead — SipHash's finalization alone costs more than
/// the whole probe should.  Not DoS-resistant, which is fine for process-
/// internal caches whose keys the process itself constructs.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        // the Firefox hash: rotate, xor, multiply by a large odd constant
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`]; usable directly as the `S`
/// parameter of `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A point-in-time view of a [`ShardedMap`]'s sharding behaviour: how many
/// lock acquisitions there were and how many of them found their shard
/// already held by another thread.  The PR-6 parallel-search work flagged
/// the failure memo as "the first contention point at higher core counts";
/// these counters make that claim *observable* — a session can report
/// `contended / (reads + writes)` instead of assuming the 32-way split is
/// enough.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of lock shards the map splits its key space across.
    pub shards: usize,
    /// Read-lock acquisitions (`get`).
    pub reads: u64,
    /// Write-lock acquisitions (`insert` / `merge`).
    pub writes: u64,
    /// Read acquisitions that found the shard write-locked and had to block.
    pub reads_contended: u64,
    /// Write acquisitions that found the shard locked and had to block.
    pub writes_contended: u64,
}

impl ShardStats {
    /// Fraction of acquisitions that blocked, in `[0, 1]`; `0.0` when the
    /// map was never touched.
    pub fn contention_ratio(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            (self.reads_contended + self.writes_contended) as f64 / total as f64
        }
    }
}

impl std::ops::Sub for ShardStats {
    type Output = ShardStats;
    /// Counter delta between two snapshots of the *same* map (saturating,
    /// so a stale "before" snapshot never underflows).
    fn sub(self, before: ShardStats) -> ShardStats {
        ShardStats {
            shards: self.shards,
            reads: self.reads.saturating_sub(before.reads),
            writes: self.writes.saturating_sub(before.writes),
            reads_contended: self.reads_contended.saturating_sub(before.reads_contended),
            writes_contended: self
                .writes_contended
                .saturating_sub(before.writes_contended),
        }
    }
}

/// A concurrent hash map split into `SHARDS` `RwLock`-guarded shards.
/// See the module docs for the intended cache profile and the poisoning
/// policy.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V, FxBuildHasher>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    reads_contended: AtomicU64,
    writes_contended: AtomicU64,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// An empty map.
    pub fn new() -> ShardedMap<K, V> {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            reads_contended: AtomicU64::new(0),
            writes_contended: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V, FxBuildHasher>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        // use the high bits for shard selection: the map inside each shard
        // indexes by the low bits of the same hash function
        &self.shards[(h.finish() >> 57) as usize & (SHARDS - 1)]
    }

    /// Acquire a shard's read lock, counting the acquisition and whether it
    /// had to block behind a writer.  Contention is detected with a
    /// `try_read` probe *before* the blocking wait — cheap, and exact
    /// enough for a trend counter (a shard released between the probe and
    /// the wait over-counts by one).
    fn read_shard<'a>(
        &'a self,
        shard: &'a RwLock<HashMap<K, V, FxBuildHasher>>,
    ) -> std::sync::RwLockReadGuard<'a, HashMap<K, V, FxBuildHasher>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        match shard.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.reads_contended.fetch_add(1, Ordering::Relaxed);
                shard.read().unwrap_or_else(|p| p.into_inner())
            }
        }
    }

    /// Write-lock counterpart of [`read_shard`](Self::read_shard).
    fn write_shard<'a>(
        &'a self,
        shard: &'a RwLock<HashMap<K, V, FxBuildHasher>>,
    ) -> std::sync::RwLockWriteGuard<'a, HashMap<K, V, FxBuildHasher>> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        match shard.try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.writes_contended.fetch_add(1, Ordering::Relaxed);
                shard.write().unwrap_or_else(|p| p.into_inner())
            }
        }
    }

    /// Look up a key, cloning the value out (values are cheap handles:
    /// `Arc`s, shared formulas, small copies).
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.read_shard(self.shard(key)).get(key).cloned()
    }

    /// Insert a value, returning the previous one (if any).  Two workers
    /// racing on the same key simply overwrite each other with values
    /// computed from the same inputs.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.write_shard(self.shard(&key)).insert(key, value)
    }

    /// Merge a value into the map: insert it when the key is absent,
    /// otherwise let `f` combine it into the existing entry (e.g. a
    /// `max`-merge for the failure memo's refuted budgets).
    pub fn merge(&self, key: K, value: V, f: impl FnOnce(&mut V, V)) {
        let mut shard = self.write_shard(self.shard(&key));
        match shard.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => f(e.get_mut(), value),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value);
            }
        }
    }

    /// Lifetime totals of this map's lock traffic.  Counters are `Relaxed`
    /// atomics: exact under quiescence (when the caller snapshots between
    /// workloads), approximate while workers are still running.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            shards: SHARDS,
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            reads_contended: self.reads_contended.load(Ordering::Relaxed),
            writes_contended: self.writes_contended.load(Ordering::Relaxed),
        }
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.read().unwrap_or_else(|p| p.into_inner()).is_empty())
    }
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap::new()
    }
}

impl<K: Hash + Eq, V> std::fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_merge_len() {
        let map: ShardedMap<u64, usize> = ShardedMap::new();
        assert!(map.is_empty());
        assert_eq!(map.get(&1), None);
        assert_eq!(map.insert(1, 10), None);
        assert_eq!(map.insert(1, 11), Some(10));
        assert_eq!(map.get(&1), Some(11));
        map.merge(1, 5, |cur, new| *cur = (*cur).max(new));
        assert_eq!(map.get(&1), Some(11), "max-merge keeps the larger value");
        map.merge(1, 20, |cur, new| *cur = (*cur).max(new));
        assert_eq!(map.get(&1), Some(20));
        map.merge(2, 7, |cur, new| *cur = (*cur).max(new));
        assert_eq!(map.get(&2), Some(7), "merge inserts absent keys");
        // keys spread across shards still count once each
        for k in 0..100u64 {
            map.insert(k, k as usize);
        }
        assert_eq!(map.len(), 100);
        assert!(!map.is_empty());
    }

    #[test]
    fn concurrent_probes_and_inserts() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let map = &map;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let _ = map.get(&(i / 2));
                        map.merge(i, t, |cur, new| *cur = (*cur).max(new));
                    }
                });
            }
        });
        assert_eq!(map.len(), 500);
        for i in 0..500u64 {
            assert_eq!(
                map.get(&i),
                Some(3),
                "max-merge converges to the largest writer"
            );
        }
    }

    #[test]
    fn stats_count_lock_traffic() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        let zero = map.stats();
        assert_eq!(zero.shards, SHARDS);
        assert_eq!((zero.reads, zero.writes), (0, 0));
        assert_eq!(zero.contention_ratio(), 0.0);
        for k in 0..10u64 {
            map.insert(k, k);
            let _ = map.get(&k);
        }
        map.merge(3, 9, |cur, new| *cur = (*cur).max(new));
        let after = map.stats() - zero;
        assert_eq!(after.reads, 10);
        assert_eq!(after.writes, 11, "merge counts as a write acquisition");
        // single-threaded traffic never contends
        assert_eq!((after.reads_contended, after.writes_contended), (0, 0));
        assert_eq!(after.contention_ratio(), 0.0);
    }

    #[test]
    fn contention_counter_fires_when_a_shard_is_held() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        map.insert(7, 7);
        let shard = map.shard(&7);
        std::thread::scope(|scope| {
            let guard = shard.write().unwrap();
            let t = scope.spawn(|| map.get(&7));
            // wait until the prober has registered the read and blocked on
            // the held shard, then release it
            while (map.stats().reads_contended) == 0 {
                std::thread::yield_now();
            }
            drop(guard);
            assert_eq!(t.join().unwrap(), Some(7));
        });
        let stats = map.stats();
        assert!(stats.reads_contended >= 1);
        assert!(stats.contention_ratio() > 0.0);
    }

    #[test]
    fn poisoned_shards_recover() {
        let map: std::sync::Arc<ShardedMap<u8, u8>> = std::sync::Arc::new(ShardedMap::new());
        // poison every shard by panicking while holding its write lock
        for k in 0..=255u8 {
            let map = map.clone();
            let _ = std::thread::spawn(move || {
                let shard = map.shard(&k);
                let _guard = shard.write().unwrap();
                panic!("poison shard");
            })
            .join();
        }
        map.insert(1, 2);
        assert_eq!(map.get(&1), Some(2), "reads and writes survive poisoning");
        assert_eq!(map.len(), 1);
    }
}
