//! # nrs-shared
//!
//! Hash-consed shared syntax nodes, factored out of `nrs-delta0` so every
//! syntax layer (the Δ0 formulas/terms, the first-order formulas of
//! `nrs-fol`, and any future calculus) can share one implementation.
//!
//! [`Shared<T>`] is the smart pointer used for the children of syntax trees:
//! an `Arc`-shared node carrying a cached structural hash, a cached node
//! count, and a lazily cached free-variable set (mirroring the `SetValue`
//! sharing introduced for values in `nrs-value`).  On top of the sharing,
//! nodes are **interned**: every `Shared::new` consults a global per-type
//! table and returns the existing node when a structurally equal one is
//! alive.  The payoff, relied on throughout the provers' hot paths:
//!
//! * `clone` is O(1) (a reference-count bump);
//! * `Hash` is O(1) (the cached hash is written out);
//! * `==` is O(1) (interning makes structural equality pointer equality);
//! * free-variable queries are O(log |vars|) after the first computation,
//!   which lets substitution and term replacement skip entire subtrees that
//!   cannot contain the variable being rewritten.
//!
//! `Ord` remains a structural comparison (with a pointer-equality fast path)
//! so that `BTreeSet`/sorted-`Vec` orderings are identical to a `Box`-based
//! representation, and the serialized form is transparent — the wire format
//! is unchanged.
//!
//! The intern tables hold [`Weak`] references and purge dead entries as they
//! grow, so interning never leaks nodes whose last strong handle is dropped.

mod cache;

pub use cache::{FxBuildHasher, FxHasher, ShardStats, ShardedMap};

use nrs_value::Name;
use serde::{Content, Deserialize, Error, Serialize};
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Number of independently locked shards per intern table (a power of two).
const SHARDS: usize = 32;

/// The shared payload of a hash-consed node.
#[derive(Debug)]
pub struct Node<T> {
    hash: u64,
    size: u32,
    free_vars: OnceLock<Arc<BTreeSet<Name>>>,
    value: T,
}

/// Types that can be hash-consed by [`Shared`].
pub trait HashConsed: Clone + Eq + Hash + Send + Sync + Sized + 'static {
    /// The global intern table for this type.
    fn intern_table() -> &'static InternTable<Self>;
    /// Free variables of a node, computed from the (already cached) sets of
    /// its children — called at most once per interned node.
    fn compute_free_vars(&self) -> Arc<BTreeSet<Name>>;
    /// Structural node count, computed from the cached sizes of children.
    fn compute_size(&self) -> usize;
}

/// An interned, `Arc`-shared syntax node.  See the crate docs.
pub struct Shared<T: HashConsed>(Arc<Node<T>>);

impl<T: HashConsed> Shared<T> {
    /// Intern a value: return the existing node when a structurally equal one
    /// is alive, otherwise allocate (and remember) a new one.
    pub fn new(value: T) -> Shared<T> {
        let mut hasher = DefaultHasher::new();
        value.hash(&mut hasher);
        let hash = hasher.finish();
        T::intern_table().intern(hash, value)
    }

    /// The cached structural hash of the subtree.
    pub fn hash64(&self) -> u64 {
        self.0.hash
    }

    /// The cached structural size (node count) of the subtree.
    pub fn size(&self) -> usize {
        self.0.size as usize
    }

    /// The underlying value.
    pub fn value(&self) -> &T {
        &self.0.value
    }

    /// The free variables of the subtree (computed once, then cached).
    pub fn free_vars_set(&self) -> &Arc<BTreeSet<Name>> {
        self.0
            .free_vars
            .get_or_init(|| self.0.value.compute_free_vars())
    }

    /// Do two handles point at the very same node?  Because every handle is
    /// interned, this is *equivalent* to structural equality.
    pub fn ptr_eq(&self, other: &Shared<T>) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// The empty free-variable set, shared by all leaf nodes.
pub fn empty_name_set() -> Arc<BTreeSet<Name>> {
    static EMPTY: OnceLock<Arc<BTreeSet<Name>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(BTreeSet::new())).clone()
}

/// Union of two shared name sets, reusing an operand's `Arc` when it already
/// subsumes the other side (the common case when merging child caches).
pub fn union_name_sets(a: &Arc<BTreeSet<Name>>, b: &Arc<BTreeSet<Name>>) -> Arc<BTreeSet<Name>> {
    if b.is_subset(a) {
        a.clone()
    } else if a.is_subset(b) {
        b.clone()
    } else {
        Arc::new(a.union(b).copied().collect())
    }
}

impl<T: HashConsed> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<T: HashConsed> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        // Interning guarantees at most one live node per structural value, so
        // pointer equality *is* structural equality.
        self.ptr_eq(other)
    }
}

impl<T: HashConsed> Eq for Shared<T> {}

impl<T: HashConsed + Ord> PartialOrd for Shared<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: HashConsed + Ord> Ord for Shared<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.ptr_eq(other) {
            return std::cmp::Ordering::Equal;
        }
        self.0.value.cmp(&other.0.value)
    }
}

impl<T: HashConsed> Hash for Shared<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl<T: HashConsed> std::ops::Deref for Shared<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0.value
    }
}

impl<T: HashConsed + fmt::Debug> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.value.fmt(f)
    }
}

impl<T: HashConsed + fmt::Display> fmt::Display for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.value.fmt(f)
    }
}

impl<T: HashConsed + Serialize> Serialize for Shared<T> {
    fn serialize(&self) -> Content {
        self.0.value.serialize()
    }
}

impl<T: HashConsed + Deserialize> Deserialize for Shared<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        T::deserialize(content).map(Shared::new)
    }
}

// ---------------------------------------------------------------------------
// The intern table
// ---------------------------------------------------------------------------

struct Shard<T> {
    buckets: HashMap<u64, Vec<Weak<Node<T>>>>,
    /// Purge dead weak entries when the shard outgrows this many buckets.
    purge_at: usize,
}

impl<T> Default for Shard<T> {
    fn default() -> Self {
        Shard {
            buckets: HashMap::new(),
            purge_at: 64,
        }
    }
}

/// A sharded weak intern table; one static instance exists per consed type.
pub struct InternTable<T> {
    shards: [Mutex<Shard<T>>; SHARDS],
}

impl<T: HashConsed> Default for InternTable<T> {
    fn default() -> Self {
        InternTable {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
        }
    }
}

impl<T: HashConsed> InternTable<T> {
    fn intern(&self, hash: u64, value: T) -> Shared<T> {
        let shard = &self.shards[(hash as usize) & (SHARDS - 1)];
        let mut guard = shard.lock().expect("intern table poisoned");
        if let Some(bucket) = guard.buckets.get_mut(&hash) {
            bucket.retain(|w| w.strong_count() > 0);
            for weak in bucket.iter() {
                if let Some(node) = weak.upgrade() {
                    if node.value == value {
                        tally(1, 0);
                        return Shared(node);
                    }
                }
            }
        }
        tally(0, 1);
        let node = Arc::new(Node {
            hash,
            size: value.compute_size().min(u32::MAX as usize) as u32,
            free_vars: OnceLock::new(),
            value,
        });
        guard
            .buckets
            .entry(hash)
            .or_default()
            .push(Arc::downgrade(&node));
        if guard.buckets.len() > guard.purge_at {
            guard.buckets.retain(|_, bucket| {
                bucket.retain(|w| w.strong_count() > 0);
                !bucket.is_empty()
            });
            guard.purge_at = (guard.buckets.len() * 2).max(64);
        }
        Shared(node)
    }
}

// ---------------------------------------------------------------------------
// Interner statistics (per thread)
// ---------------------------------------------------------------------------

/// Interner hit/miss counters for the **current thread** (a hit is a
/// `Shared::new` that found an existing live node).  Thread-local so that a
/// prover worker can attribute interner traffic to its own search exactly,
/// even when sessions run goals in parallel.  The counters are global across
/// all consed types — they measure interner *traffic*, not per-type tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Constructions that reused an existing node.
    pub hits: u64,
    /// Constructions that allocated a fresh node.
    pub misses: u64,
}

thread_local! {
    static STATS: Cell<InternStats> = const { Cell::new(InternStats { hits: 0, misses: 0 }) };
}

fn tally(hits: u64, misses: u64) {
    STATS.with(|s| {
        let cur = s.get();
        s.set(InternStats {
            hits: cur.hits + hits,
            misses: cur.misses + misses,
        });
    });
}

/// Snapshot the current thread's interner counters (monotone; subtract two
/// snapshots to attribute traffic to a region of work).
pub fn intern_stats() -> InternStats {
    STATS.with(|s| s.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal cons-able tree for exercising the table generically; the
    /// real syntax types live in `nrs-delta0` and `nrs-fol` (whose test
    /// suites cover interning through their constructors).
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum Tree {
        Leaf(Name),
        Pair(Shared<Tree>, Shared<Tree>),
    }

    static TREE_TABLE: OnceLock<InternTable<Tree>> = OnceLock::new();

    impl HashConsed for Tree {
        fn intern_table() -> &'static InternTable<Tree> {
            TREE_TABLE.get_or_init(InternTable::default)
        }
        fn compute_free_vars(&self) -> Arc<BTreeSet<Name>> {
            match self {
                Tree::Leaf(n) => Arc::new([*n].into_iter().collect()),
                Tree::Pair(a, b) => union_name_sets(a.free_vars_set(), b.free_vars_set()),
            }
        }
        fn compute_size(&self) -> usize {
            match self {
                Tree::Leaf(_) => 1,
                Tree::Pair(a, b) => 1 + a.size() + b.size(),
            }
        }
    }

    fn leaf(n: &str) -> Shared<Tree> {
        Shared::new(Tree::Leaf(Name::new(n)))
    }

    #[test]
    fn interning_dedupes_and_caches() {
        let a = Shared::new(Tree::Pair(leaf("shared_lib_x"), leaf("shared_lib_y")));
        let b = Shared::new(Tree::Pair(leaf("shared_lib_x"), leaf("shared_lib_y")));
        assert!(a.ptr_eq(&b));
        assert_eq!(a.hash64(), b.hash64());
        assert_eq!(a.size(), 3);
        let fv = a.free_vars_set();
        assert!(fv.contains(&Name::new("shared_lib_x")));
        assert!(Arc::ptr_eq(fv, a.free_vars_set()));
    }

    #[test]
    fn counters_and_dead_node_reinterning() {
        let before = intern_stats();
        let t = leaf("shared_lib_unique_probe");
        let mid = intern_stats();
        assert!(mid.misses > before.misses);
        let u = leaf("shared_lib_unique_probe");
        assert!(intern_stats().hits > mid.hits);
        assert_eq!(t, u);
        drop((t, u));
        // after dropping the only strong handles, interning again must not
        // panic or return a dangling node
        let v = leaf("shared_lib_unique_probe");
        assert_eq!(v, leaf("shared_lib_unique_probe"));
    }

    #[test]
    fn empty_set_is_shared_and_unions_reuse_arcs() {
        let e1 = empty_name_set();
        let e2 = empty_name_set();
        assert!(Arc::ptr_eq(&e1, &e2));
        let a: Arc<BTreeSet<Name>> = Arc::new([Name::new("a")].into_iter().collect());
        let ab: Arc<BTreeSet<Name>> =
            Arc::new([Name::new("a"), Name::new("b")].into_iter().collect());
        assert!(Arc::ptr_eq(&union_name_sets(&a, &ab), &ab));
        assert!(Arc::ptr_eq(&union_name_sets(&ab, &a), &ab));
        let c: Arc<BTreeSet<Name>> = Arc::new([Name::new("c")].into_iter().collect());
        assert_eq!(union_name_sets(&a, &c).len(), 2);
    }
}
