//! Ur-elements ("atoms"): the opaque scalar values of the data model.
//!
//! The paper leaves the set of Ur-elements abstract (it only needs equality).
//! We represent them as `u64` identifiers with an optional human-readable
//! rendering used by examples (e.g. order ids, part names).  Only equality and
//! ordering are ever consulted by the algorithms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An Ur-element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Atom(pub u64);

impl Atom {
    /// Construct an atom from a raw identifier.
    pub fn new(id: u64) -> Self {
        Atom(id)
    }

    /// The raw identifier.
    pub fn id(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<u64> for Atom {
    fn from(v: u64) -> Self {
        Atom(v)
    }
}

/// A simple pool handing out consecutive fresh atoms; used by the workload
/// generators to build instances with controlled sharing of data values.
#[derive(Debug, Default, Clone)]
pub struct AtomPool {
    next: u64,
}

impl AtomPool {
    /// A pool starting from zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool starting from the given id.
    pub fn starting_at(next: u64) -> Self {
        AtomPool { next }
    }

    /// Hand out the next fresh atom.
    pub fn fresh(&mut self) -> Atom {
        let a = Atom(self.next);
        self.next += 1;
        a
    }

    /// Hand out `n` fresh atoms.
    pub fn fresh_many(&mut self, n: usize) -> Vec<Atom> {
        (0..n).map(|_| self.fresh()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_compare_by_id() {
        assert!(Atom::new(1) < Atom::new(2));
        assert_eq!(Atom::from(5).id(), 5);
        assert_eq!(Atom::new(3).to_string(), "a3");
    }

    #[test]
    fn pool_hands_out_distinct_atoms() {
        let mut p = AtomPool::new();
        let xs = p.fresh_many(10);
        let mut uniq = xs.clone();
        uniq.dedup();
        assert_eq!(xs.len(), uniq.len());
        let mut p2 = AtomPool::starting_at(100);
        assert_eq!(p2.fresh(), Atom(100));
    }
}
