//! Error types for the value layer.

use crate::{Name, Type};
use std::fmt;

/// Errors raised when constructing, typing, or accessing nested values and
/// instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// A value did not have the expected type.
    TypeMismatch {
        /// What the context expected.
        expected: Type,
        /// A description of what was found.
        found: String,
    },
    /// An operation expected a set value.
    NotASet(String),
    /// An operation expected a pair value.
    NotAPair(String),
    /// An operation expected an atom.
    NotAnAtom(String),
    /// `get` was applied to a set that is not a singleton; the default element
    /// for the requested type could not be constructed (only happens for `Ur`,
    /// which has no canonical default in an empty active domain).
    NoDefault(Type),
    /// A named object was missing from an instance.
    UnknownName(Name),
    /// A named object was declared twice in a schema.
    DuplicateName(Name),
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ValueError::NotASet(v) => write!(f, "expected a set value, found {v}"),
            ValueError::NotAPair(v) => write!(f, "expected a pair value, found {v}"),
            ValueError::NotAnAtom(v) => write!(f, "expected an atom, found {v}"),
            ValueError::NoDefault(t) => {
                write!(
                    f,
                    "no default element available for type {t} (get on a non-singleton)"
                )
            }
            ValueError::UnknownName(n) => write!(f, "unknown object name: {n}"),
            ValueError::DuplicateName(n) => write!(f, "duplicate object name: {n}"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ValueError::TypeMismatch {
            expected: Type::Ur,
            found: "()".into(),
        };
        assert!(e.to_string().contains("expected U"));
        let e = ValueError::UnknownName(Name::new("V"));
        assert!(e.to_string().contains("V"));
        let e = ValueError::NoDefault(Type::Ur);
        assert!(e.to_string().contains("get"));
    }
}
