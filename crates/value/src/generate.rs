//! Synthetic workload generators.
//!
//! The paper has no experimental datasets, so the benchmark harness and the
//! property tests build their own nested relational instances.  This module
//! provides:
//!
//! * [`random_value`] — a random value of an arbitrary type, with size knobs;
//! * [`keyed_nested_instance`] — the "lossless flatten" family from Examples
//!   1.1 / 4.1: base data `B : Set(𝔘 × Set(𝔘))` whose first component is a key
//!   and whose second component is non-empty, together with its flattened view
//!   `V : Set(𝔘 × 𝔘)`;
//! * [`warehouse_instance`] — a larger "orders / items" scenario used by the
//!   `warehouse_nesting` example and the rewriting benchmarks;
//! * [`random_relation`] — flat relations for the first-order baseline.

use crate::atoms::AtomPool;
use crate::instance::Instance;
use crate::types::Type;
use crate::value::Value;
use crate::Name;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Parameters controlling random value generation.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of distinct atoms available.
    pub universe: u64,
    /// Maximum cardinality of each generated set.
    pub max_set_size: usize,
    /// Random seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            universe: 16,
            max_set_size: 4,
            seed: 0xC0FFEE,
        }
    }
}

/// Generate a random value of type `ty` according to `cfg`.
pub fn random_value(ty: &Type, cfg: &GenConfig) -> Value {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    random_value_with(ty, cfg, &mut rng)
}

/// Generate a random value using an externally supplied RNG (so that several
/// values can be drawn from one deterministic stream).
pub fn random_value_with(ty: &Type, cfg: &GenConfig, rng: &mut StdRng) -> Value {
    match ty {
        Type::Unit => Value::Unit,
        Type::Ur => Value::atom(rng.gen_range(0..cfg.universe)),
        Type::Prod(a, b) => Value::pair(
            random_value_with(a, cfg, rng),
            random_value_with(b, cfg, rng),
        ),
        Type::Set(elem) => {
            let n = rng.gen_range(0..=cfg.max_set_size);
            let mut s = BTreeSet::new();
            for _ in 0..n {
                s.insert(random_value_with(elem, cfg, rng));
            }
            Value::from_set(s)
        }
    }
}

/// The schema of the flatten family: `B : Set(𝔘 × Set(𝔘))`, `V : Set(𝔘 × 𝔘)`.
pub fn keyed_nested_schema() -> crate::Schema {
    crate::Schema::from_decls([
        (
            Name::new("B"),
            Type::set(Type::prod(Type::Ur, Type::set(Type::Ur))),
        ),
        (Name::new("V"), Type::relation(2)),
    ])
    .expect("fixed schema")
}

/// Generate an instance of the "lossless flatten" family (Examples 1.1 / 4.1).
///
/// * `groups` distinct keys, each associated with a non-empty set of between 1
///   and `max_group` values (so `Σ_lossless` holds);
/// * `V` is the flattening `{⟨π1(b), c⟩ | c ∈ π2(b), b ∈ B}`.
///
/// Returns an [`Instance`] binding `B` and `V`.
pub fn keyed_nested_instance(groups: usize, max_group: usize, seed: u64) -> Instance {
    assert!(
        max_group >= 1,
        "groups must be non-empty for the lossless constraint"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = AtomPool::new();
    let keys = pool.fresh_many(groups);
    let mut b_rows = BTreeSet::new();
    let mut v_rows = BTreeSet::new();
    for key in keys {
        let n = rng.gen_range(1..=max_group);
        let members: BTreeSet<Value> = (0..n)
            .map(|_| Value::Atom(pool.fresh()))
            .collect::<BTreeSet<_>>();
        for m in &members {
            v_rows.insert(Value::pair(Value::Atom(key), m.clone()));
        }
        b_rows.insert(Value::pair(Value::Atom(key), Value::from_set(members)));
    }
    Instance::from_bindings([
        (Name::new("B"), Value::from_set(b_rows)),
        (Name::new("V"), Value::from_set(v_rows)),
    ])
}

/// Compute the flattening view of a `Set(𝔘 × Set(𝔘))` value directly (used to
/// cross-check NRC evaluation and to build view instances).
pub fn flatten(b: &Value) -> Value {
    let mut out = BTreeSet::new();
    if let Ok(rows) = b.as_set() {
        for row in rows {
            if let (Ok(k), Ok(members)) = (row.proj1(), row.proj2()) {
                if let Ok(ms) = members.as_set() {
                    for m in ms {
                        out.insert(Value::pair(k.clone(), m.clone()));
                    }
                }
            }
        }
    }
    Value::from_set(out)
}

/// The schema of the warehouse scenario.
///
/// `Orders : Set(𝔘 × Set(𝔘 × 𝔘))` — an order id paired with its line items
/// (item id, quantity-tag); `OrderItems : Set(𝔘 × 𝔘)` — the flat view pairing
/// order ids with item ids; `ItemQty : Set(𝔘 × 𝔘 × 𝔘)` — the fully flat view.
pub fn warehouse_schema() -> crate::Schema {
    let line = Type::prod(Type::Ur, Type::Ur);
    crate::Schema::from_decls([
        (
            Name::new("Orders"),
            Type::set(Type::prod(Type::Ur, Type::set(line.clone()))),
        ),
        (Name::new("OrderItems"), Type::relation(2)),
        (Name::new("ItemQty"), Type::set(Type::prod(Type::Ur, line))),
    ])
    .expect("fixed schema")
}

/// Generate a warehouse instance with `orders` orders, each holding between 1
/// and `max_items` line items; also materializes the two flat views.
pub fn warehouse_instance(orders: usize, max_items: usize, seed: u64) -> Instance {
    assert!(max_items >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = AtomPool::new();
    let order_ids = pool.fresh_many(orders);
    // a shared catalogue of item ids so different orders reference the same items
    let catalogue = pool.fresh_many((orders.max(2) / 2).max(2));
    let mut orders_rows = BTreeSet::new();
    let mut order_items = BTreeSet::new();
    let mut item_qty = BTreeSet::new();
    for oid in order_ids {
        let n = rng.gen_range(1..=max_items);
        let mut lines = BTreeSet::new();
        for _ in 0..n {
            let item = catalogue[rng.gen_range(0..catalogue.len())];
            let qty = pool.fresh(); // quantities are opaque tags in the Ur-element model
            let line = Value::pair(Value::Atom(item), Value::Atom(qty));
            lines.insert(line.clone());
            order_items.insert(Value::pair(Value::Atom(oid), Value::Atom(item)));
            item_qty.insert(Value::pair(Value::Atom(oid), line));
        }
        orders_rows.insert(Value::pair(Value::Atom(oid), Value::from_set(lines)));
    }
    Instance::from_bindings([
        (Name::new("Orders"), Value::from_set(orders_rows)),
        (Name::new("OrderItems"), Value::from_set(order_items)),
        (Name::new("ItemQty"), Value::from_set(item_qty)),
    ])
}

/// Generate a flat `arity`-ary relation with `rows` tuples over a universe of
/// `universe` atoms.
pub fn random_relation(arity: usize, rows: usize, universe: u64, seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = BTreeSet::new();
    for _ in 0..rows {
        let tuple = Value::tuple(
            (0..arity)
                .map(|_| Value::atom(rng.gen_range(0..universe)))
                .collect::<Vec<_>>(),
        );
        out.insert(tuple);
    }
    Value::from_set(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_values_are_well_typed_and_deterministic() {
        let ty = Type::set(Type::prod(Type::Ur, Type::set(Type::Ur)));
        let cfg = GenConfig::default();
        let v1 = random_value(&ty, &cfg);
        let v2 = random_value(&ty, &cfg);
        assert_eq!(v1, v2, "same seed, same value");
        assert!(v1.has_type(&ty));
        let other = random_value(&ty, &GenConfig { seed: 1, ..cfg });
        // overwhelmingly likely to differ; if equal the generator is broken
        assert!(v1 != other || v1 == Value::empty_set());
    }

    #[test]
    fn keyed_nested_instance_satisfies_lossless_constraints() {
        let inst = keyed_nested_instance(8, 3, 42);
        let schema = keyed_nested_schema();
        assert!(inst.conforms_to(&schema).is_ok());
        let b = inst.get(&Name::new("B")).unwrap();
        let v = inst.get(&Name::new("V")).unwrap();
        // key constraint: first components are pairwise distinct
        let keys: Vec<_> = b
            .as_set()
            .unwrap()
            .iter()
            .map(|r| r.proj1().unwrap().clone())
            .collect();
        let uniq: BTreeSet<_> = keys.iter().cloned().collect();
        assert_eq!(keys.len(), uniq.len());
        // non-emptiness of groups
        for row in b.as_set().unwrap() {
            assert!(!row.proj2().unwrap().as_set().unwrap().is_empty());
        }
        // V is exactly the flattening of B
        assert_eq!(v, &flatten(b));
        assert_eq!(b.as_set().unwrap().len(), 8);
    }

    #[test]
    fn flatten_ignores_malformed_rows_gracefully() {
        assert_eq!(flatten(&Value::Unit), Value::empty_set());
        assert_eq!(flatten(&Value::empty_set()), Value::empty_set());
    }

    #[test]
    fn warehouse_instance_views_agree_with_nested_data() {
        let inst = warehouse_instance(10, 4, 7);
        assert!(inst.conforms_to(&warehouse_schema()).is_ok());
        let orders = inst.get(&Name::new("Orders")).unwrap();
        let order_items = inst.get(&Name::new("OrderItems")).unwrap();
        let item_qty = inst.get(&Name::new("ItemQty")).unwrap();
        // every flat row is justified by a nested row and vice versa
        let mut expected_flat = BTreeSet::new();
        let mut expected_iq = BTreeSet::new();
        for row in orders.as_set().unwrap() {
            let oid = row.proj1().unwrap();
            for line in row.proj2().unwrap().as_set().unwrap() {
                expected_flat.insert(Value::pair(oid.clone(), line.proj1().unwrap().clone()));
                expected_iq.insert(Value::pair(oid.clone(), line.clone()));
            }
        }
        assert_eq!(order_items.as_set().unwrap(), &expected_flat);
        assert_eq!(item_qty.as_set().unwrap(), &expected_iq);
        assert_eq!(orders.as_set().unwrap().len(), 10);
    }

    #[test]
    fn random_relation_has_requested_shape() {
        let r = random_relation(3, 20, 5, 9);
        assert!(r.has_type(&Type::relation(3)));
        assert!(r.as_set().unwrap().len() <= 20);
        assert!(!r.as_set().unwrap().is_empty());
        // determinism
        assert_eq!(r, random_relation(3, 20, 5, 9));
    }
}
