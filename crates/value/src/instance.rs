//! Schemas and instances.
//!
//! A [`Schema`] declares named objects with nested relational types (paper
//! Example 3.1).  An [`Instance`] binds each declared name to a value of the
//! right type.  Instances double as variable environments for Δ0 and NRC
//! evaluation further up the stack.

use crate::error::ValueError;
use crate::types::Type;
use crate::value::Value;
use crate::{Atom, Name};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A nested relational schema: an ordered map from object names to types.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    decls: BTreeMap<Name, Type>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schema from declarations, rejecting duplicates.
    pub fn from_decls(decls: impl IntoIterator<Item = (Name, Type)>) -> Result<Self, ValueError> {
        let mut s = Schema::new();
        for (n, t) in decls {
            s.declare(n, t)?;
        }
        Ok(s)
    }

    /// Declare an object; errors if the name is already declared.
    pub fn declare(&mut self, name: impl Into<Name>, ty: Type) -> Result<(), ValueError> {
        let name = name.into();
        if self.decls.contains_key(&name) {
            return Err(ValueError::DuplicateName(name));
        }
        self.decls.insert(name, ty);
        Ok(())
    }

    /// Look up the type of a declared object.
    pub fn type_of(&self, name: &Name) -> Result<&Type, ValueError> {
        self.decls.get(name).ok_or(ValueError::UnknownName(*name))
    }

    /// Does the schema declare this name?
    pub fn contains(&self, name: &Name) -> bool {
        self.decls.contains_key(name)
    }

    /// Iterate declarations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Type)> {
        self.decls.iter()
    }

    /// Declared names, in order.
    pub fn names(&self) -> Vec<Name> {
        self.decls.keys().cloned().collect()
    }

    /// Number of declarations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Restrict the schema to the given names (silently dropping unknown ones).
    pub fn restrict(&self, names: &[Name]) -> Schema {
        Schema {
            decls: self
                .decls
                .iter()
                .filter(|(n, _)| names.contains(n))
                .map(|(n, t)| (*n, t.clone()))
                .collect(),
        }
    }

    /// Union of two schemas; errors on conflicting declarations.
    pub fn merge(&self, other: &Schema) -> Result<Schema, ValueError> {
        let mut out = self.clone();
        for (n, t) in other.iter() {
            match out.decls.get(n) {
                Some(existing) if existing == t => {}
                Some(_) => return Err(ValueError::DuplicateName(*n)),
                None => {
                    out.decls.insert(*n, t.clone());
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (n, t)) in self.decls.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{n} : {t}")?;
        }
        Ok(())
    }
}

/// A binding of names to values; also used as an evaluation environment.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Instance {
    bindings: BTreeMap<Name, Value>,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an instance from bindings (later bindings overwrite earlier ones).
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Name, Value)>) -> Self {
        Instance {
            bindings: bindings.into_iter().collect(),
        }
    }

    /// Bind (or rebind) a name.
    pub fn bind(&mut self, name: impl Into<Name>, value: Value) -> &mut Self {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Functional update: a copy of this instance with one extra binding.
    pub fn with(&self, name: impl Into<Name>, value: Value) -> Instance {
        let mut out = self.clone();
        out.bind(name, value);
        out
    }

    /// Look up a binding.
    pub fn get(&self, name: &Name) -> Result<&Value, ValueError> {
        self.bindings
            .get(name)
            .ok_or(ValueError::UnknownName(*name))
    }

    /// Look up a binding, returning `None` when absent.
    pub fn try_get(&self, name: &Name) -> Option<&Value> {
        self.bindings.get(name)
    }

    /// Is this name bound?
    pub fn contains(&self, name: &Name) -> bool {
        self.bindings.contains_key(name)
    }

    /// Iterate bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Value)> {
        self.bindings.iter()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Check the instance against a schema: every declared object must be
    /// bound to a value of its declared type.  Extra bindings are allowed
    /// (they play the role of auxiliary objects in specifications).
    pub fn conforms_to(&self, schema: &Schema) -> Result<(), ValueError> {
        for (name, ty) in schema.iter() {
            let v = self.get(name)?;
            if !v.has_type(ty) {
                return Err(ValueError::TypeMismatch {
                    expected: ty.clone(),
                    found: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Restriction of the instance to the given names.
    pub fn restrict(&self, names: &[Name]) -> Instance {
        Instance {
            bindings: self
                .bindings
                .iter()
                .filter(|(n, _)| names.contains(n))
                .map(|(n, v)| (*n, v.clone()))
                .collect(),
        }
    }

    /// Do two instances agree on the given names (all present and equal)?
    pub fn agree_on(&self, other: &Instance, names: &[Name]) -> bool {
        names
            .iter()
            .all(|n| match (self.try_get(n), other.try_get(n)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            })
    }

    /// The active domain of the instance: all atoms occurring in any binding.
    pub fn active_domain(&self) -> Vec<Atom> {
        let mut set = std::collections::BTreeSet::new();
        for (_, v) in self.iter() {
            set.extend(v.atoms());
        }
        set.into_iter().collect()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (n, v)) in self.bindings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{n} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_schema() -> Schema {
        Schema::from_decls([
            (Name::new("R"), Type::relation(2)),
            (
                Name::new("S"),
                Type::set(Type::prod(Type::Ur, Type::set(Type::Ur))),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn schema_declares_and_looks_up() {
        let s = example_schema();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&Name::new("R")));
        assert_eq!(s.type_of(&Name::new("R")).unwrap(), &Type::relation(2));
        assert!(s.type_of(&Name::new("T")).is_err());
        assert_eq!(s.names(), vec![Name::new("R"), Name::new("S")]);
    }

    #[test]
    fn schema_rejects_duplicates() {
        let mut s = example_schema();
        assert!(matches!(
            s.declare("R", Type::Ur),
            Err(ValueError::DuplicateName(_))
        ));
    }

    #[test]
    fn schema_merge_and_restrict() {
        let s = example_schema();
        let mut other = Schema::new();
        other.declare("Q", Type::bool()).unwrap();
        let merged = s.merge(&other).unwrap();
        assert_eq!(merged.len(), 3);
        // conflicting type is an error
        let mut conflict = Schema::new();
        conflict.declare("R", Type::Ur).unwrap();
        assert!(s.merge(&conflict).is_err());
        // identical re-declaration is fine
        assert_eq!(s.merge(&s).unwrap().len(), 2);
        let restricted = merged.restrict(&[Name::new("Q")]);
        assert_eq!(restricted.names(), vec![Name::new("Q")]);
    }

    #[test]
    fn instance_conformance_from_paper_example() {
        // Example from §3: R = {<4,6>, <7,3>}, S = {<4, {6,9}>}
        let schema = example_schema();
        let inst = Instance::from_bindings([
            (
                Name::new("R"),
                Value::set([
                    Value::pair(Value::atom(4), Value::atom(6)),
                    Value::pair(Value::atom(7), Value::atom(3)),
                ]),
            ),
            (
                Name::new("S"),
                Value::set([Value::pair(
                    Value::atom(4),
                    Value::set([Value::atom(6), Value::atom(9)]),
                )]),
            ),
        ]);
        assert!(inst.conforms_to(&schema).is_ok());
        let mut bad = inst.clone();
        bad.bind("R", Value::atom(1));
        assert!(bad.conforms_to(&schema).is_err());
        // missing binding
        let partial = inst.restrict(&[Name::new("R")]);
        assert!(partial.conforms_to(&schema).is_err());
    }

    #[test]
    fn instance_agreement_and_active_domain() {
        let i1 = Instance::from_bindings([
            (Name::new("V"), Value::set([Value::atom(1)])),
            (Name::new("O"), Value::atom(9)),
        ]);
        let i2 = i1.with("O", Value::atom(10));
        assert!(i1.agree_on(&i2, &[Name::new("V")]));
        assert!(!i1.agree_on(&i2, &[Name::new("V"), Name::new("O")]));
        assert!(!i1.agree_on(&Instance::new(), &[Name::new("V")]));
        let dom: Vec<u64> = i1.active_domain().into_iter().map(|a| a.id()).collect();
        assert_eq!(dom, vec![1, 9]);
    }

    #[test]
    fn with_is_functional_update() {
        let base = Instance::new();
        let ext = base.with("x", Value::Unit);
        assert!(base.is_empty());
        assert_eq!(ext.get(&Name::new("x")).unwrap(), &Value::Unit);
        assert_eq!(ext.len(), 1);
        assert!(ext.try_get(&Name::new("y")).is_none());
    }

    #[test]
    fn display_shows_bindings() {
        let i = Instance::from_bindings([(Name::new("x"), Value::atom(1))]);
        assert_eq!(i.to_string(), "x = a1");
        let s = Schema::from_decls([(Name::new("x"), Type::Ur)]).unwrap();
        assert_eq!(s.to_string(), "x : U");
    }
}
