//! Schemas and instances.
//!
//! A [`Schema`] declares named objects with nested relational types (paper
//! Example 3.1).  An [`Instance`] binds each declared name to a value of the
//! right type.  Instances double as variable environments for Δ0 and NRC
//! evaluation further up the stack.
//!
//! # Persistence
//!
//! `Instance` is a **persistent** (immutable, structurally shared) treap keyed
//! by [`Name`]: [`Instance::with`] produces an extended environment in
//! O(log n) by path copying, sharing every untouched subtree with the
//! original.  The evaluators extend environments once per set member on their
//! hottest loops; with the previous `BTreeMap` representation each extension
//! deep-copied every binding.  Node priorities are a pure function of the
//! name's string, so the tree shape (and hence iteration order — in-order,
//! i.e. lexicographic by name) is deterministic and insertion-order
//! independent.

use crate::error::ValueError;
use crate::types::Type;
use crate::value::Value;
use crate::{Atom, Name};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A nested relational schema: an ordered map from object names to types.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    decls: BTreeMap<Name, Type>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schema from declarations, rejecting duplicates.
    pub fn from_decls(decls: impl IntoIterator<Item = (Name, Type)>) -> Result<Self, ValueError> {
        let mut s = Schema::new();
        for (n, t) in decls {
            s.declare(n, t)?;
        }
        Ok(s)
    }

    /// Declare an object; errors if the name is already declared.
    pub fn declare(&mut self, name: impl Into<Name>, ty: Type) -> Result<(), ValueError> {
        let name = name.into();
        if self.decls.contains_key(&name) {
            return Err(ValueError::DuplicateName(name));
        }
        self.decls.insert(name, ty);
        Ok(())
    }

    /// Look up the type of a declared object.
    pub fn type_of(&self, name: &Name) -> Result<&Type, ValueError> {
        self.decls.get(name).ok_or(ValueError::UnknownName(*name))
    }

    /// Does the schema declare this name?
    pub fn contains(&self, name: &Name) -> bool {
        self.decls.contains_key(name)
    }

    /// Iterate declarations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Type)> {
        self.decls.iter()
    }

    /// Declared names, in order.
    pub fn names(&self) -> Vec<Name> {
        self.decls.keys().cloned().collect()
    }

    /// Number of declarations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Restrict the schema to the given names (silently dropping unknown ones).
    pub fn restrict(&self, names: &[Name]) -> Schema {
        Schema {
            decls: self
                .decls
                .iter()
                .filter(|(n, _)| names.contains(n))
                .map(|(n, t)| (*n, t.clone()))
                .collect(),
        }
    }

    /// Union of two schemas; errors on conflicting declarations.
    pub fn merge(&self, other: &Schema) -> Result<Schema, ValueError> {
        let mut out = self.clone();
        for (n, t) in other.iter() {
            match out.decls.get(n) {
                Some(existing) if existing == t => {}
                Some(_) => return Err(ValueError::DuplicateName(*n)),
                None => {
                    out.decls.insert(*n, t.clone());
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (n, t)) in self.decls.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{n} : {t}")?;
        }
        Ok(())
    }
}

/// One node of the persistent treap behind [`Instance`].
#[derive(Debug)]
struct MapNode {
    key: Name,
    value: Value,
    /// Heap priority — a pure function of the key string (see [`priority`]),
    /// so the treap shape is canonical for a given key set.
    prio: u64,
    /// Size of the subtree rooted here.
    len: usize,
    left: Link,
    right: Link,
}

type Link = Option<Arc<MapNode>>;

/// Deterministic node priority: FNV-1a over the name's string.  Stable across
/// processes (unlike the interner id), so the tree shape never depends on
/// execution order.
fn priority(name: &Name) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_str().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn link_len(link: &Link) -> usize {
    link.as_ref().map_or(0, |n| n.len)
}

fn mk_node(key: Name, prio: u64, value: Value, left: Link, right: Link) -> Arc<MapNode> {
    let len = 1 + link_len(&left) + link_len(&right);
    Arc::new(MapNode {
        key,
        value,
        prio,
        len,
        left,
        right,
    })
}

/// Persistent insert-or-replace by path copying, with treap rotations to keep
/// the expected depth logarithmic.
fn treap_insert(link: &Link, key: Name, prio: u64, value: Value) -> Arc<MapNode> {
    let Some(n) = link else {
        return mk_node(key, prio, value, None, None);
    };
    match key.cmp(&n.key) {
        Ordering::Equal => mk_node(key, n.prio, value, n.left.clone(), n.right.clone()),
        Ordering::Less => {
            let nl = treap_insert(&n.left, key, prio, value);
            if nl.prio > n.prio {
                // rotate right: the new left child moves above `n`
                let lowered = mk_node(
                    n.key,
                    n.prio,
                    n.value.clone(),
                    nl.right.clone(),
                    n.right.clone(),
                );
                mk_node(
                    nl.key,
                    nl.prio,
                    nl.value.clone(),
                    nl.left.clone(),
                    Some(lowered),
                )
            } else {
                mk_node(n.key, n.prio, n.value.clone(), Some(nl), n.right.clone())
            }
        }
        Ordering::Greater => {
            let nr = treap_insert(&n.right, key, prio, value);
            if nr.prio > n.prio {
                // rotate left: the new right child moves above `n`
                let lowered = mk_node(
                    n.key,
                    n.prio,
                    n.value.clone(),
                    n.left.clone(),
                    nr.left.clone(),
                );
                mk_node(
                    nr.key,
                    nr.prio,
                    nr.value.clone(),
                    Some(lowered),
                    nr.right.clone(),
                )
            } else {
                mk_node(n.key, n.prio, n.value.clone(), n.left.clone(), Some(nr))
            }
        }
    }
}

/// Persistent delete by path copying: remove `key` from the subtree, merging
/// its children by priority where it is found.  Returns the new subtree and
/// whether the key was present.
fn treap_remove(link: &Link, key: &Name) -> (Link, bool) {
    let Some(n) = link else {
        return (None, false);
    };
    match key.cmp(&n.key) {
        Ordering::Equal => (treap_merge(&n.left, &n.right), true),
        Ordering::Less => {
            let (nl, removed) = treap_remove(&n.left, key);
            if !removed {
                return (Some(n.clone()), false);
            }
            (
                Some(mk_node(n.key, n.prio, n.value.clone(), nl, n.right.clone())),
                true,
            )
        }
        Ordering::Greater => {
            let (nr, removed) = treap_remove(&n.right, key);
            if !removed {
                return (Some(n.clone()), false);
            }
            (
                Some(mk_node(n.key, n.prio, n.value.clone(), n.left.clone(), nr)),
                true,
            )
        }
    }
}

/// Merge two treaps where every key of `a` is smaller than every key of `b`,
/// keeping the heap order on priorities.
fn treap_merge(a: &Link, b: &Link) -> Link {
    match (a, b) {
        (None, other) | (other, None) => other.clone(),
        (Some(na), Some(nb)) => {
            if na.prio >= nb.prio {
                Some(mk_node(
                    na.key,
                    na.prio,
                    na.value.clone(),
                    na.left.clone(),
                    treap_merge(&na.right, b),
                ))
            } else {
                Some(mk_node(
                    nb.key,
                    nb.prio,
                    nb.value.clone(),
                    treap_merge(a, &nb.left),
                    nb.right.clone(),
                ))
            }
        }
    }
}

/// In-order (= lexicographic by name) iterator over treap bindings.
pub struct InstanceIter<'a> {
    stack: Vec<&'a MapNode>,
}

impl<'a> InstanceIter<'a> {
    fn descend(&mut self, mut link: &'a Link) {
        while let Some(n) = link {
            self.stack.push(n);
            link = &n.left;
        }
    }
}

impl<'a> Iterator for InstanceIter<'a> {
    type Item = (&'a Name, &'a Value);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.descend(&n.right);
        Some((&n.key, &n.value))
    }
}

/// A binding of names to values; also used as an evaluation environment.
///
/// Persistent: [`Instance::with`] extends in O(log n) with full structural
/// sharing (see the module docs).
#[derive(Clone, Default)]
pub struct Instance {
    root: Link,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an instance from bindings (later bindings overwrite earlier ones).
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Name, Value)>) -> Self {
        let mut out = Instance::new();
        for (n, v) in bindings {
            out.bind(n, v);
        }
        out
    }

    /// Bind (or rebind) a name.
    pub fn bind(&mut self, name: impl Into<Name>, value: Value) -> &mut Self {
        let name = name.into();
        self.root = Some(treap_insert(&self.root, name, priority(&name), value));
        self
    }

    /// Functional update: an extension of this instance with one extra
    /// binding.  O(log n) — the result shares every untouched subtree with
    /// `self` instead of copying the environment.
    pub fn with(&self, name: impl Into<Name>, value: Value) -> Instance {
        let name = name.into();
        Instance {
            root: Some(treap_insert(&self.root, name, priority(&name), value)),
        }
    }

    /// Functional delete: this instance minus one binding, in O(log n) by
    /// path copying (the deleted node's children are merged by priority, so
    /// the canonical shape for the remaining key set is preserved).  Returns
    /// `self` unchanged (sharing the whole tree) when the name is unbound.
    pub fn without(&self, name: &Name) -> Instance {
        let (root, removed) = treap_remove(&self.root, name);
        if removed {
            Instance { root }
        } else {
            self.clone()
        }
    }

    /// Remove a binding in place; returns whether it was present.
    pub fn unbind(&mut self, name: &Name) -> bool {
        let (root, removed) = treap_remove(&self.root, name);
        if removed {
            self.root = root;
        }
        removed
    }

    /// Functional batch update: extend/overwrite with every given binding.
    /// O(k log n) path copies for k touched bindings — how
    /// `UpdateBatch::apply` in the IVM layer produces the post-batch
    /// instance without disturbing the pre-batch one.
    pub fn with_many(&self, bindings: impl IntoIterator<Item = (Name, Value)>) -> Instance {
        let mut out = self.clone();
        for (n, v) in bindings {
            out.bind(n, v);
        }
        out
    }

    /// Look up a binding.
    pub fn get(&self, name: &Name) -> Result<&Value, ValueError> {
        self.try_get(name).ok_or(ValueError::UnknownName(*name))
    }

    /// Look up a binding, returning `None` when absent.
    pub fn try_get(&self, name: &Name) -> Option<&Value> {
        let mut link = &self.root;
        while let Some(n) = link {
            match name.cmp(&n.key) {
                Ordering::Equal => return Some(&n.value),
                Ordering::Less => link = &n.left,
                Ordering::Greater => link = &n.right,
            }
        }
        None
    }

    /// Is this name bound?
    pub fn contains(&self, name: &Name) -> bool {
        self.try_get(name).is_some()
    }

    /// Iterate bindings in name order.
    pub fn iter(&self) -> InstanceIter<'_> {
        let mut it = InstanceIter { stack: Vec::new() };
        it.descend(&self.root);
        it
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        link_len(&self.root)
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Check the instance against a schema: every declared object must be
    /// bound to a value of its declared type.  Extra bindings are allowed
    /// (they play the role of auxiliary objects in specifications).
    pub fn conforms_to(&self, schema: &Schema) -> Result<(), ValueError> {
        for (name, ty) in schema.iter() {
            let v = self.get(name)?;
            if !v.has_type(ty) {
                return Err(ValueError::TypeMismatch {
                    expected: ty.clone(),
                    found: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Restriction of the instance to the given names.
    pub fn restrict(&self, names: &[Name]) -> Instance {
        Instance::from_bindings(
            self.iter()
                .filter(|(n, _)| names.contains(n))
                .map(|(n, v)| (*n, v.clone())),
        )
    }

    /// Do two instances agree on the given names (all present and equal)?
    pub fn agree_on(&self, other: &Instance, names: &[Name]) -> bool {
        names
            .iter()
            .all(|n| match (self.try_get(n), other.try_get(n)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            })
    }

    /// The active domain of the instance: all atoms occurring in any binding.
    pub fn active_domain(&self) -> Vec<Atom> {
        let mut set = std::collections::BTreeSet::new();
        for (_, v) in self.iter() {
            set.extend(v.atoms());
        }
        set.into_iter().collect()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (n, v)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{n} = {v}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        // Extensional: same bindings, regardless of sharing history.  (The
        // canonical treap shape would make a structural compare sound too,
        // but the iterator compare is obviously right and just as fast.)
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Instance {}

impl Serialize for Instance {
    fn serialize(&self) -> serde::Content {
        // Mirror the wire shape of the previous derived impl on
        // `struct Instance { bindings: BTreeMap<Name, Value> }`.
        let pairs = self
            .iter()
            .map(|(n, v)| (n.serialize(), v.serialize()))
            .collect();
        serde::Content::Map(vec![(
            serde::Content::Str("bindings".to_owned()),
            serde::Content::Map(pairs),
        )])
    }
}

impl Deserialize for Instance {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        let bindings = content
            .get_field("bindings")
            .ok_or_else(|| serde::Error::custom("missing field `bindings`"))?;
        let map = BTreeMap::<Name, Value>::deserialize(bindings)?;
        Ok(Instance::from_bindings(map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_schema() -> Schema {
        Schema::from_decls([
            (Name::new("R"), Type::relation(2)),
            (
                Name::new("S"),
                Type::set(Type::prod(Type::Ur, Type::set(Type::Ur))),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn schema_declares_and_looks_up() {
        let s = example_schema();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&Name::new("R")));
        assert_eq!(s.type_of(&Name::new("R")).unwrap(), &Type::relation(2));
        assert!(s.type_of(&Name::new("T")).is_err());
        assert_eq!(s.names(), vec![Name::new("R"), Name::new("S")]);
    }

    #[test]
    fn schema_rejects_duplicates() {
        let mut s = example_schema();
        assert!(matches!(
            s.declare("R", Type::Ur),
            Err(ValueError::DuplicateName(_))
        ));
    }

    #[test]
    fn schema_merge_and_restrict() {
        let s = example_schema();
        let mut other = Schema::new();
        other.declare("Q", Type::bool()).unwrap();
        let merged = s.merge(&other).unwrap();
        assert_eq!(merged.len(), 3);
        // conflicting type is an error
        let mut conflict = Schema::new();
        conflict.declare("R", Type::Ur).unwrap();
        assert!(s.merge(&conflict).is_err());
        // identical re-declaration is fine
        assert_eq!(s.merge(&s).unwrap().len(), 2);
        let restricted = merged.restrict(&[Name::new("Q")]);
        assert_eq!(restricted.names(), vec![Name::new("Q")]);
    }

    #[test]
    fn instance_conformance_from_paper_example() {
        // Example from §3: R = {<4,6>, <7,3>}, S = {<4, {6,9}>}
        let schema = example_schema();
        let inst = Instance::from_bindings([
            (
                Name::new("R"),
                Value::set([
                    Value::pair(Value::atom(4), Value::atom(6)),
                    Value::pair(Value::atom(7), Value::atom(3)),
                ]),
            ),
            (
                Name::new("S"),
                Value::set([Value::pair(
                    Value::atom(4),
                    Value::set([Value::atom(6), Value::atom(9)]),
                )]),
            ),
        ]);
        assert!(inst.conforms_to(&schema).is_ok());
        let mut bad = inst.clone();
        bad.bind("R", Value::atom(1));
        assert!(bad.conforms_to(&schema).is_err());
        // missing binding
        let partial = inst.restrict(&[Name::new("R")]);
        assert!(partial.conforms_to(&schema).is_err());
    }

    #[test]
    fn instance_agreement_and_active_domain() {
        let i1 = Instance::from_bindings([
            (Name::new("V"), Value::set([Value::atom(1)])),
            (Name::new("O"), Value::atom(9)),
        ]);
        let i2 = i1.with("O", Value::atom(10));
        assert!(i1.agree_on(&i2, &[Name::new("V")]));
        assert!(!i1.agree_on(&i2, &[Name::new("V"), Name::new("O")]));
        assert!(!i1.agree_on(&Instance::new(), &[Name::new("V")]));
        let dom: Vec<u64> = i1.active_domain().into_iter().map(|a| a.id()).collect();
        assert_eq!(dom, vec![1, 9]);
    }

    #[test]
    fn with_is_functional_update() {
        let base = Instance::new();
        let ext = base.with("x", Value::Unit);
        assert!(base.is_empty());
        assert_eq!(ext.get(&Name::new("x")).unwrap(), &Value::Unit);
        assert_eq!(ext.len(), 1);
        assert!(ext.try_get(&Name::new("y")).is_none());
    }

    #[test]
    fn display_shows_bindings() {
        let i = Instance::from_bindings([(Name::new("x"), Value::atom(1))]);
        assert_eq!(i.to_string(), "x = a1");
        let s = Schema::from_decls([(Name::new("x"), Type::Ur)]).unwrap();
        assert_eq!(s.to_string(), "x : U");
    }

    #[test]
    fn treap_iterates_in_name_order_regardless_of_insertion_order() {
        let names: Vec<String> = (0..200).map(|i| format!("n{i:03}")).collect();
        let mut shuffled = names.clone();
        // deterministic pseudo-shuffle
        for i in 0..shuffled.len() {
            let j = (i * 7919 + 13) % shuffled.len();
            shuffled.swap(i, j);
        }
        let fwd = Instance::from_bindings(
            names
                .iter()
                .enumerate()
                .map(|(i, n)| (Name::new(n), Value::atom(i as u64))),
        );
        let shuf = Instance::from_bindings(shuffled.iter().map(|n| {
            (
                Name::new(n),
                Value::atom(names.iter().position(|m| m == n).unwrap() as u64),
            )
        }));
        assert_eq!(
            fwd, shuf,
            "extensional equality is insertion-order independent"
        );
        let iterated: Vec<&'static str> = fwd.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = iterated.clone();
        sorted.sort_unstable();
        assert_eq!(iterated, sorted, "iteration is lexicographic");
        assert_eq!(fwd.len(), 200);
    }

    #[test]
    fn without_removes_persistently_and_keeps_canonical_shape() {
        let names: Vec<String> = (0..100).map(|i| format!("k{i:02}")).collect();
        let full = Instance::from_bindings(
            names
                .iter()
                .enumerate()
                .map(|(i, n)| (Name::new(n), Value::atom(i as u64))),
        );
        // deleting every other key, functionally
        let mut thinned = full.clone();
        for (i, n) in names.iter().enumerate() {
            if i % 2 == 0 {
                thinned = thinned.without(&Name::new(n));
            }
        }
        assert_eq!(full.len(), 100, "original untouched");
        assert_eq!(thinned.len(), 50);
        for (i, n) in names.iter().enumerate() {
            assert_eq!(thinned.contains(&Name::new(n)), i % 2 != 0, "{n}");
        }
        // canonical shape: delete-then-reinsert equals never-deleted
        let n13 = Name::new("k13");
        let back = thinned.without(&n13).with(n13, Value::atom(13));
        assert_eq!(back, thinned);
        let iterated: Vec<&'static str> = thinned.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = iterated.clone();
        sorted.sort_unstable();
        assert_eq!(iterated, sorted, "iteration stays lexicographic");
        // removing an unbound name shares the whole tree
        let same = thinned.without(&Name::new("zz_missing"));
        assert_eq!(same, thinned);
    }

    #[test]
    fn unbind_and_with_many() {
        let mut i = Instance::from_bindings([
            (Name::new("a"), Value::atom(1)),
            (Name::new("b"), Value::atom(2)),
        ]);
        assert!(i.unbind(&Name::new("a")));
        assert!(!i.unbind(&Name::new("a")));
        assert_eq!(i.len(), 1);
        let ext = i.with_many([
            (Name::new("b"), Value::atom(20)),
            (Name::new("c"), Value::atom(30)),
        ]);
        assert_eq!(i.len(), 1, "with_many is functional");
        assert_eq!(ext.get(&Name::new("b")).unwrap(), &Value::atom(20));
        assert_eq!(ext.get(&Name::new("c")).unwrap(), &Value::atom(30));
        assert_eq!(ext.len(), 2);
    }

    #[test]
    fn with_shares_structure_and_rebinding_replaces() {
        let mut base = Instance::new();
        for i in 0..64u64 {
            base.bind(format!("v{i}"), Value::atom(i));
        }
        // a chain of functional extensions leaves every predecessor intact
        let e1 = base.with("w", Value::atom(100));
        let e2 = e1.with("w", Value::atom(101));
        assert_eq!(base.len(), 64);
        assert!(!base.contains(&Name::new("w")));
        assert_eq!(e1.get(&Name::new("w")).unwrap(), &Value::atom(100));
        assert_eq!(e2.get(&Name::new("w")).unwrap(), &Value::atom(101));
        assert_eq!(e1.len(), 65);
        assert_eq!(e2.len(), 65);
        // untouched bindings are still reachable through every version
        for i in 0..64u64 {
            assert_eq!(
                e2.get(&Name::new(format!("v{i}"))).unwrap(),
                &Value::atom(i)
            );
        }
    }
}
