//! # nrs-value
//!
//! The nested relational data model used throughout the workspace.
//!
//! This crate implements the substrate that the paper
//! *Synthesizing Nested Relational Queries from Implicit Specifications*
//! (Benedikt, Pradic, Wernhard; PODS 2023) assumes: the type system
//! `Unit | 𝔘 | T × U | Set(T)`, the nested relational values inhabiting those
//! types, schemas and instances, plus generators for synthetic workloads used
//! by the tests and the benchmark harness.
//!
//! Values are kept in a canonical, *extensional* representation: sets are
//! `BTreeSet`s, so two sets with the same members are structurally equal.
//! This mirrors the paper's `|=_nested` semantics, where entailment is
//! evaluated over genuine nested relations (extensional models).
//!
//! ## Quick tour
//!
//! ```
//! use nrs_value::{Type, Value};
//!
//! // Set(𝔘 × Set(𝔘)), the type of Example 1.1's base data B.
//! let ty = Type::set(Type::prod(Type::Ur, Type::set(Type::Ur)));
//!
//! let b = Value::set(vec![
//!     Value::pair(Value::atom(4), Value::set(vec![Value::atom(6), Value::atom(9)])),
//! ]);
//! assert!(b.has_type(&ty));
//! assert_eq!(b.as_set().unwrap().len(), 1);
//! ```

pub mod atoms;
pub mod error;
pub mod generate;
pub mod instance;
pub mod name;
pub mod types;
pub mod value;

pub use atoms::Atom;
pub use error::ValueError;
pub use instance::{Instance, Schema};
pub use name::{Name, NameGen};
pub use types::{SubtypePath, SubtypeStep, Type};
pub use value::{SetValue, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_ordered_lexicographically() {
        let a = Name::new("a");
        let b = Name::new("b");
        assert!(a < b);
        assert_eq!(a, Name::from("a"));
    }

    #[test]
    fn namegen_produces_distinct_names() {
        let mut g = NameGen::new();
        let x1 = g.fresh("x");
        let x2 = g.fresh("x");
        let y = g.fresh("y");
        assert_ne!(x1, x2);
        assert_ne!(x1, y);
        assert!(x1.as_str().starts_with("x#"));
    }

    #[test]
    fn namegen_avoiding_skips_existing_suffixes() {
        let existing = [Name::new("x#7"), Name::new("plain")];
        let mut g = NameGen::avoiding(existing.iter());
        let f = g.fresh("x");
        assert_eq!(f.as_str(), "x#8");
    }

    #[test]
    fn display_roundtrip() {
        let n = Name::new("hello");
        assert_eq!(format!("{n}"), "hello");
    }
}
