//! Interned symbols.
//!
//! # Design
//!
//! [`Name`] is a `Copy` 4-byte handle into a process-wide string interner.
//! The prover's saturation loop copies names on every substitution,
//! specialization and sequent duplication; with the previous
//! `Name(pub String)` representation each of those copies was a heap
//! allocation on the hottest path of proof search.  Interning turns them into
//! word copies, and `Name` equality into an integer compare.
//!
//! The interner has two halves.  The *intern* path (string → id) is a global
//! `RwLock`-protected `HashMap`, taken only in [`Name::new`].  The *resolve*
//! path (id → string) is lock-free: ids index into an append-only chunked
//! table of `&'static str` published through atomic chunk pointers, so
//! [`Name::as_str`], `Display` and the unequal-id arm of `cmp` never touch a
//! lock — important because `BTreeMap`/`BTreeSet` operations over formulas
//! and sequents perform `Name::cmp` constantly on the prover's hot path.
//! Interned strings are leaked (`Box::leak`); the table only ever grows, and
//! in this workload the universe of distinct names is small (variables,
//! schema objects, `prefix#counter` fresh names), so the leak is bounded and
//! deliberate.
//!
//! # Determinism guarantee
//!
//! The numeric ids depend on interning order and therefore on execution
//! order — two runs (or two threads) may assign different ids to the same
//! string.  Nothing observable is allowed to depend on the id:
//!
//! * **`Ord`/`PartialOrd` resolve through the interned string**, not the id,
//!   so `Name` ordering is lexicographic exactly as it was for
//!   `Name(String)`.  This is load-bearing: synthesized artefacts serialize
//!   `BTreeMap`/`BTreeSet` containers keyed by `Name`, and their byte
//!   reproducibility across runs requires an ordering that is a pure function
//!   of the strings.  A fast path short-circuits `cmp` when the ids are equal
//!   (equal id ⟺ equal string, since the table is deduplicated).
//! * **`Eq` compares ids** — sound for the same reason the fast path is: the
//!   interner never maps one string to two ids or two strings to one id.
//! * **`Hash` hashes the id**, which is consistent with `Eq` (all Rust
//!   requires) and fast, but — unlike `Ord` — *not* stable across processes.
//!   Hash-keyed containers are execution-local caches (e.g. the prover's
//!   memo table), never serialized artefacts, so this asymmetry is safe.
//! * **`serde` round-trips the string**: a `Name` serializes exactly like the
//!   `String` it denotes and deserializes by re-interning, so persisted data
//!   never sees an id.

use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{OnceLock, RwLock};

/// Number of chunks in the resolve table; chunk `k` holds `FIRST << k`
/// entries, so 27 chunks cover every `u32` id.
const CHUNKS: usize = 27;
/// Size of chunk 0.
const FIRST: usize = 64;

/// The lock-free id → string half of the interner: an append-only chunked
/// vector.  Chunks are allocated by writers (which are serialized by the
/// intern-path write lock) and published with `Release` stores; readers load
/// the chunk pointer with `Acquire`.  Slot writes are plain writes — a reader
/// can only hold an id after a happens-before edge with the write that
/// published it (the `RwLock` on the lookup map, or whatever synchronization
/// carried the `Name` between threads).
struct ResolveTable {
    chunks: [AtomicPtr<&'static str>; CHUNKS],
}

/// Chunk index and offset for an id: chunk `k` covers
/// `[FIRST * (2^k - 1), FIRST * (2^(k+1) - 1))`.
fn locate(id: u32) -> (usize, usize) {
    let m = id as usize / FIRST + 1;
    let k = (usize::BITS - 1 - m.leading_zeros()) as usize;
    let start = FIRST * ((1 << k) - 1);
    (k, id as usize - start)
}

impl ResolveTable {
    const fn new() -> Self {
        ResolveTable {
            chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; CHUNKS],
        }
    }

    /// Record `s` at `id`.  Caller must hold the intern-path write lock and
    /// hand out ids densely (so every chunk before `id`'s is full).
    fn publish(&self, id: u32, s: &'static str) {
        let (k, off) = locate(id);
        let mut ptr = self.chunks[k].load(Ordering::Acquire);
        if ptr.is_null() {
            let chunk: Box<[&'static str]> = vec![""; FIRST << k].into_boxed_slice();
            ptr = Box::into_raw(chunk) as *mut &'static str;
            self.chunks[k].store(ptr, Ordering::Release);
        }
        // SAFETY: `off < FIRST << k` by `locate`, and no reader touches this
        // slot until `id` is published (see the type-level comment).
        unsafe { *ptr.add(off) = s };
    }

    /// Resolve a previously published id without locking.
    fn get(&self, id: u32) -> &'static str {
        let (k, off) = locate(id);
        let ptr = self.chunks[k].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null(), "resolve of unpublished Name id {id}");
        // SAFETY: `id` was returned by `intern`, so its slot was written
        // before the id could reach us.
        unsafe { *ptr.add(off) }
    }
}

static RESOLVE: ResolveTable = ResolveTable::new();

/// The string → id half of the interner, plus the next id to hand out.
#[derive(Default)]
struct Lookup {
    map: HashMap<&'static str, u32>,
}

fn lookup() -> &'static RwLock<Lookup> {
    static LOOKUP: OnceLock<RwLock<Lookup>> = OnceLock::new();
    LOOKUP.get_or_init(|| RwLock::new(Lookup::default()))
}

fn intern(s: &str) -> u32 {
    // Poisoning is harmless here: the table is only ever appended to, and an
    // id is published to RESOLVE before it is inserted, so state observed
    // through a poisoned lock is still consistent.  Recover instead of
    // cascading a panic from an unrelated thread into every Name::new.
    // Fast path: already interned, shared read lock only.
    if let Some(&id) = lookup()
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .map
        .get(s)
    {
        return id;
    }
    let mut table = lookup().write().unwrap_or_else(|p| p.into_inner());
    // Re-check: another thread may have interned `s` between the locks.
    if let Some(&id) = table.map.get(s) {
        return id;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let id = u32::try_from(table.map.len()).expect("interner exhausted u32 ids");
    RESOLVE.publish(id, leaked);
    table.map.insert(leaked, id);
    id
}

fn resolve(id: u32) -> &'static str {
    RESOLVE.get(id)
}

/// An interned variable / object name, used across the whole workspace.
///
/// `Copy`, 4 bytes, `O(1)` equality; ordering and display resolve through the
/// interned string so behaviour is indistinguishable from the earlier
/// `Name(String)` representation (see the module docs for the full contract).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Name(u32);

impl Name {
    /// Create (or look up) a name from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(intern(s.as_ref()))
    }

    /// View the underlying string.
    ///
    /// The returned reference is `'static`: interned strings live for the
    /// lifetime of the process.
    pub fn as_str(&self) -> &'static str {
        resolve(self.0)
    }

    /// The raw interner id — execution-local, exposed for diagnostics only.
    pub fn id(&self) -> u32 {
        self.0
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::fmt::Debug for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Name").field(&self.as_str()).finish()
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::new(s)
    }
}

impl From<&String> for Name {
    fn from(s: &String) -> Self {
        Name::new(s)
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

// Note: no `Borrow<str>` impl on purpose.  `Borrow` requires `Hash` to agree
// between `Name` and `str`, but `Name` hashes its interner id (see the module
// docs); offering `Borrow<str>` would make `HashMap<Name, _>` lookups by
// `&str` silently miss.  String-keyed lookups go through `Name::new` instead.

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_str()
    }
}

impl serde::Serialize for Name {
    fn serialize(&self) -> serde::Content {
        serde::Content::Str(self.as_str().to_owned())
    }
}

impl serde::Deserialize for Name {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Str(s) => Ok(Name::new(s)),
            other => Err(serde::Error::custom(format!(
                "expected a name string, found {other:?}"
            ))),
        }
    }
}

/// A generator of fresh names, shared by the proof transformations and the
/// synthesis pipeline to maintain variable hygiene.
#[derive(Debug, Default, Clone)]
pub struct NameGen {
    counter: u64,
}

impl NameGen {
    /// A fresh generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator that will never clash with the given names, assuming all
    /// generated names use the reserved `#` separator (user-facing APIs reject
    /// `#` in names).
    pub fn avoiding<'a>(names: impl IntoIterator<Item = &'a Name>) -> Self {
        let mut max = 0;
        for n in names {
            if let Some(rest) = n.as_str().rsplit('#').next() {
                if let Ok(k) = rest.parse::<u64>() {
                    max = max.max(k + 1);
                }
            }
        }
        NameGen { counter: max }
    }

    /// Produce a fresh name with the given human-readable prefix.
    pub fn fresh(&mut self, prefix: &str) -> Name {
        let n = Name::new(format!("{prefix}#{}", self.counter));
        self.counter += 1;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        assert_eq!(locate(u32::MAX), (26, 63));
        // every id maps inside its chunk
        for id in (0u32..100_000).chain([u32::MAX - 1, u32::MAX]) {
            let (k, off) = locate(id);
            assert!(k < CHUNKS, "chunk out of range for {id}");
            assert!(off < FIRST << k, "offset out of range for {id}");
        }
    }

    #[test]
    fn resolve_survives_chunk_growth() {
        // Intern enough distinct names to span several chunks and check that
        // ids keep resolving to the right strings afterwards.
        let names: Vec<Name> = (0..500).map(|i| Name::new(format!("grow#{i}"))).collect();
        for (i, n) in names.iter().enumerate() {
            assert_eq!(n.as_str(), format!("grow#{i}"));
        }
    }

    #[test]
    fn interning_deduplicates() {
        let a = Name::new("same");
        let b = Name::new(String::from("same"));
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
    }

    #[test]
    fn name_is_small_and_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Name>();
        assert_eq!(std::mem::size_of::<Name>(), 4);
    }

    /// Regression for the byte-reproducibility contract: ordering must be a
    /// pure function of the strings, independent of interning order.
    #[test]
    fn ord_is_lexicographic_regardless_of_interning_order() {
        // Interned deliberately out of lexicographic order.
        let z = Name::new("ord#z");
        let a = Name::new("ord#a");
        let m = Name::new("ord#m");
        assert!(a < m && m < z);
        assert!(z > a);
        let mut sorted = [z, m, a];
        sorted.sort();
        let strings: Vec<&str> = sorted.iter().map(Name::as_str).collect();
        assert_eq!(strings, vec!["ord#a", "ord#m", "ord#z"]);
        // Prefixes come first, exactly like str ordering.
        assert!(Name::new("x") < Name::new("x#0"));
        assert_eq!(Name::new("ord#m").cmp(&m), std::cmp::Ordering::Equal);
    }

    /// Equal ids ⟺ equal strings: determinism of the table across orderings.
    #[test]
    fn determinism_across_orderings() {
        let round1: Vec<Name> = ["d0", "d1", "d2"].iter().map(Name::new).collect();
        let round2: Vec<Name> = ["d2", "d0", "d1"].iter().map(Name::new).collect();
        assert_eq!(round1[0], round2[1]);
        assert_eq!(round1[1], round2[2]);
        assert_eq!(round1[2], round2[0]);
        assert_eq!(round1[0].id(), round2[1].id());
    }

    #[test]
    fn serde_round_trips_as_plain_string() {
        let n = Name::new("view#V1");
        let json = serde::json::to_string(&n);
        // The wire format is indistinguishable from a String.
        assert_eq!(json, serde::json::to_string(&"view#V1".to_owned()));
        assert_eq!(json, "\"view#V1\"");
        let back: Name = serde::json::from_str(&json).unwrap();
        assert_eq!(back, n);
        // And a String can be read back as a Name (and vice versa).
        let as_string: String = serde::json::from_str(&json).unwrap();
        assert_eq!(as_string, n.as_str());
    }

    #[test]
    fn display_and_debug_show_the_string() {
        let n = Name::new("hello");
        assert_eq!(format!("{n}"), "hello");
        assert_eq!(format!("{n:?}"), "Name(\"hello\")");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..64)
                        .map(|i| Name::new(format!("conc#{}", (i + t) % 64)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Name>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for names in &results {
            for n in names {
                assert_eq!(*n, Name::new(n.as_str()));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// `Name` equality and ordering agree with the underlying strings.
        #[test]
        fn prop_name_cmp_agrees_with_str_cmp(a in 0u64..40, b in 0u64..40, salt in 0u64..4) {
            // Small colliding universe so equality cases actually occur.
            let sa = format!("p{}#{}", salt, a % 20);
            let sb = format!("p{}#{}", salt, b % 20);
            let na = Name::new(&sa);
            let nb = Name::new(&sb);
            prop_assert_eq!(na == nb, sa == sb);
            prop_assert_eq!(na.cmp(&nb), sa.as_str().cmp(sb.as_str()));
            prop_assert_eq!(na.partial_cmp(&nb), sa.partial_cmp(&sb));
        }

        /// Round-tripping through serde preserves identity.
        #[test]
        fn prop_serde_round_trip(k in 0u64..500) {
            let n = Name::new(format!("rt#{k}"));
            let back: Name = serde::json::from_str(&serde::json::to_string(&n)).unwrap();
            prop_assert_eq!(back, n);
        }
    }
}
