//! Nested relational values.
//!
//! A [`Value`] is an element of the interpretation of some [`Type`]: the unit
//! value, an atom, a pair, or a finite set.  Sets are stored as `BTreeSet`s so
//! that the representation is canonical: extensional equality coincides with
//! structural (`Eq`) equality, and iteration order is deterministic.
//!
//! # Sharing
//!
//! Pairs and sets are **structurally shared**: `Pair` holds `Arc<Value>`
//! children and `Set` holds a [`SetValue`] — an `Arc`-wrapped `BTreeSet` with
//! a lazily cached structural hash.  `Value::clone` is therefore O(1)
//! (reference-count bumps), which is what lets the NRC evaluators rebind the
//! same large sets in environment frames millions of times without deep
//! copies.  Equality, ordering, iteration order and the serialized form are
//! unchanged from the previous deep representation: `SetValue` compares and
//! orders through the underlying `BTreeSet` (with pointer-equality and
//! cached-hash fast paths), so extensional canonicity is preserved.

use crate::error::ValueError;
use crate::types::Type;
use crate::Atom;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// The shared payload of a set value: the canonical `BTreeSet` plus a cached
/// structural hash, computed at most once per node.
#[derive(Debug, Clone)]
struct SetNode {
    elems: BTreeSet<Value>,
    hash: OnceLock<u64>,
}

/// An `Arc`-shared, hash-cached set of values.
///
/// Dereferences to the underlying `BTreeSet<Value>`, so member access reads
/// exactly like the plain representation.  Cloning is O(1); two clones share
/// the same node (and the same cached hash).
#[derive(Clone)]
pub struct SetValue(Arc<SetNode>);

impl SetValue {
    /// The empty set (no allocation is shared between empties; they are tiny).
    pub fn empty() -> SetValue {
        BTreeSet::new().into()
    }

    /// The underlying canonical set.
    pub fn elems(&self) -> &BTreeSet<Value> {
        &self.0.elems
    }

    /// The cached structural hash of the set (computed on first use).
    ///
    /// A pure function of the member set, so `a == b` implies
    /// `a.hash64() == b.hash64()`; the converse is (overwhelmingly likely but)
    /// not guaranteed, so the hash is only ever used as a fast *negative*.
    pub fn hash64(&self) -> u64 {
        *self.0.hash.get_or_init(|| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            self.0.elems.len().hash(&mut h);
            for e in &self.0.elems {
                e.hash(&mut h);
            }
            h.finish()
        })
    }

    /// Do two handles point at the very same node?
    pub fn ptr_eq(&self, other: &SetValue) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Mutable access to the member set, copying on write: when this handle is
    /// the sole owner of the node the mutation is in place (so a k-element
    /// delta costs O(k log n)); when the node is shared the set is cloned once
    /// first, exactly like any persistent update.  The cached hash is
    /// invalidated either way, so the canonicity/hash contract is preserved.
    ///
    /// This is what lets the incremental view-maintenance layer keep a
    /// maintained output up to date under single-tuple updates without paying
    /// a full-set copy per batch.
    pub fn make_mut(&mut self) -> &mut BTreeSet<Value> {
        let node = Arc::make_mut(&mut self.0);
        node.hash = OnceLock::new();
        &mut node.elems
    }

    /// Recover the owned `BTreeSet`, cloning only if the node is shared.
    pub fn into_elems(self) -> BTreeSet<Value> {
        match Arc::try_unwrap(self.0) {
            Ok(node) => node.elems,
            Err(shared) => shared.elems.clone(),
        }
    }
}

impl From<BTreeSet<Value>> for SetValue {
    fn from(elems: BTreeSet<Value>) -> Self {
        SetValue(Arc::new(SetNode {
            elems,
            hash: OnceLock::new(),
        }))
    }
}

impl FromIterator<Value> for SetValue {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        iter.into_iter().collect::<BTreeSet<Value>>().into()
    }
}

impl std::ops::Deref for SetValue {
    type Target = BTreeSet<Value>;
    fn deref(&self) -> &BTreeSet<Value> {
        &self.0.elems
    }
}

impl PartialEq for SetValue {
    fn eq(&self, other: &Self) -> bool {
        if self.ptr_eq(other) {
            return true;
        }
        if self.0.elems.len() != other.0.elems.len() {
            return false;
        }
        // Cached hashes are a cheap negative once both sides are warm.
        if let (Some(a), Some(b)) = (self.0.hash.get(), other.0.hash.get()) {
            if a != b {
                return false;
            }
        }
        self.0.elems == other.0.elems
    }
}

impl Eq for SetValue {}

impl PartialOrd for SetValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SetValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.ptr_eq(other) {
            std::cmp::Ordering::Equal
        } else {
            // Lexicographic on the canonical member sequence — identical to
            // the ordering of the previous plain-`BTreeSet` representation,
            // which Display stability and serialized artefacts rely on.
            self.0.elems.cmp(&other.0.elems)
        }
    }
}

impl Hash for SetValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash64());
    }
}

impl fmt::Debug for SetValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.elems.fmt(f)
    }
}

impl Serialize for SetValue {
    fn serialize(&self) -> serde::Content {
        self.0.elems.serialize()
    }
}

impl Deserialize for SetValue {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        BTreeSet::<Value>::deserialize(content).map(SetValue::from)
    }
}

/// A nested relational value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// The unique inhabitant of `Unit`.
    Unit,
    /// An Ur-element.
    Atom(Atom),
    /// A pair (children are shared, see the module docs).
    Pair(Arc<Value>, Arc<Value>),
    /// A finite set (shared and hash-cached, see [`SetValue`]).
    Set(SetValue),
}

impl Value {
    /// An atom value from a raw id.
    pub fn atom(id: u64) -> Value {
        Value::Atom(Atom::new(id))
    }

    /// A pair value.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Arc::new(a), Arc::new(b))
    }

    /// A set value from any iterator of elements (duplicates collapse).
    pub fn set(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// A set value from an already canonical `BTreeSet`.
    pub fn from_set(items: BTreeSet<Value>) -> Value {
        Value::Set(items.into())
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(SetValue::empty())
    }

    /// A right-nested tuple `⟨v1, ⟨v2, …⟩⟩`; the 1-ary tuple is the value itself.
    pub fn tuple(parts: Vec<Value>) -> Value {
        let mut it = parts.into_iter().rev();
        let last = it
            .next()
            .expect("Value::tuple requires at least one component");
        it.fold(last, |acc, v| Value::pair(v, acc))
    }

    /// The encoding of `true`: `{()} : Set(Unit)`.
    pub fn bool_true() -> Value {
        Value::set([Value::Unit])
    }

    /// The encoding of `false`: `∅ : Set(Unit)`.
    pub fn bool_false() -> Value {
        Value::empty_set()
    }

    /// Encode a Rust boolean.
    pub fn from_bool(b: bool) -> Value {
        if b {
            Value::bool_true()
        } else {
            Value::bool_false()
        }
    }

    /// Decode a `Set(Unit)` value as a boolean (any nonempty set counts as true).
    pub fn as_bool(&self) -> Result<bool, ValueError> {
        match self {
            Value::Set(s) => Ok(!s.is_empty()),
            other => Err(ValueError::NotASet(other.to_string())),
        }
    }

    /// View as a set.
    pub fn as_set(&self) -> Result<&BTreeSet<Value>, ValueError> {
        match self {
            Value::Set(s) => Ok(s.elems()),
            other => Err(ValueError::NotASet(other.to_string())),
        }
    }

    /// View the shared set handle (clones are O(1)).
    pub fn as_set_value(&self) -> Result<&SetValue, ValueError> {
        match self {
            Value::Set(s) => Ok(s),
            other => Err(ValueError::NotASet(other.to_string())),
        }
    }

    /// Consume as a set.
    pub fn into_set(self) -> Result<BTreeSet<Value>, ValueError> {
        match self {
            Value::Set(s) => Ok(s.into_elems()),
            other => Err(ValueError::NotASet(other.to_string())),
        }
    }

    /// View as a pair.
    pub fn as_pair(&self) -> Result<(&Value, &Value), ValueError> {
        match self {
            Value::Pair(a, b) => Ok((a, b)),
            other => Err(ValueError::NotAPair(other.to_string())),
        }
    }

    /// View as an atom.
    pub fn as_atom(&self) -> Result<Atom, ValueError> {
        match self {
            Value::Atom(a) => Ok(*a),
            other => Err(ValueError::NotAnAtom(other.to_string())),
        }
    }

    /// First projection (error if not a pair).
    pub fn proj1(&self) -> Result<&Value, ValueError> {
        Ok(self.as_pair()?.0)
    }

    /// Second projection (error if not a pair).
    pub fn proj2(&self) -> Result<&Value, ValueError> {
        Ok(self.as_pair()?.1)
    }

    /// Does this value inhabit the given type?
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Unit, Type::Unit) => true,
            (Value::Atom(_), Type::Ur) => true,
            (Value::Pair(a, b), Type::Prod(ta, tb)) => a.has_type(ta) && b.has_type(tb),
            (Value::Set(s), Type::Set(te)) => s.iter().all(|v| v.has_type(te)),
            _ => false,
        }
    }

    /// Infer *a* type for this value.  Empty sets are ambiguous; they default
    /// to `Set(Ur)` unless a surrounding context refines them, so prefer
    /// [`Value::has_type`] when a type is known.
    pub fn infer_type(&self) -> Type {
        match self {
            Value::Unit => Type::Unit,
            Value::Atom(_) => Type::Ur,
            Value::Pair(a, b) => Type::prod(a.infer_type(), b.infer_type()),
            Value::Set(s) => match s.iter().next() {
                Some(v) => Type::set(v.infer_type()),
                None => Type::set(Type::Ur),
            },
        }
    }

    /// The canonical "default" value of a type, used to give `get` a total
    /// semantics on non-singletons, as in the paper ("some default object of
    /// the appropriate type").  For `Ur` we use atom 0.
    pub fn default_of(ty: &Type) -> Value {
        match ty {
            Type::Unit => Value::Unit,
            Type::Ur => Value::atom(0),
            Type::Prod(a, b) => Value::pair(Value::default_of(a), Value::default_of(b)),
            Type::Set(_) => Value::empty_set(),
        }
    }

    /// Structural size (number of constructors), a convenient cost measure for
    /// benches and proptest shrinking diagnostics.
    pub fn size(&self) -> usize {
        match self {
            Value::Unit | Value::Atom(_) => 1,
            Value::Pair(a, b) => 1 + a.size() + b.size(),
            Value::Set(s) => 1 + s.iter().map(Value::size).sum::<usize>(),
        }
    }

    /// All atoms occurring hereditarily inside this value (its "active
    /// domain"), in sorted order.  This is the transitive-closure collection
    /// that the base case of Theorem 10 relies on.
    pub fn atoms(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<Atom>) {
        match self {
            Value::Unit => {}
            Value::Atom(a) => {
                out.insert(*a);
            }
            Value::Pair(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            Value::Set(s) => {
                for v in s.iter() {
                    v.collect_atoms(out);
                }
            }
        }
    }

    /// Membership test for set values.
    pub fn contains(&self, elem: &Value) -> Result<bool, ValueError> {
        Ok(self.as_set()?.contains(elem))
    }

    /// Set union (errors if either value is not a set).
    pub fn union(&self, other: &Value) -> Result<Value, ValueError> {
        let (lhs, rhs) = (self.as_set_value()?, other.as_set_value()?);
        // Share instead of copying when one side contributes nothing.
        if rhs.is_empty() || lhs.ptr_eq(rhs) {
            return Ok(Value::Set(lhs.clone()));
        }
        if lhs.is_empty() {
            return Ok(Value::Set(rhs.clone()));
        }
        let mut s = lhs.elems().clone();
        s.extend(rhs.iter().cloned());
        Ok(Value::from_set(s))
    }

    /// Set difference (errors if either value is not a set).
    pub fn difference(&self, other: &Value) -> Result<Value, ValueError> {
        let rhs = other.as_set()?;
        let s = self
            .as_set()?
            .iter()
            .filter(|v| !rhs.contains(*v))
            .cloned()
            .collect();
        Ok(Value::from_set(s))
    }

    /// Set intersection (errors if either value is not a set).
    pub fn intersection(&self, other: &Value) -> Result<Value, ValueError> {
        let rhs = other.as_set()?;
        let s = self
            .as_set()?
            .iter()
            .filter(|v| rhs.contains(*v))
            .cloned()
            .collect();
        Ok(Value::from_set(s))
    }

    /// The number of values [`Value::enumerate`] would produce for this type
    /// over a universe of `universe` atoms (saturating at `u128::MAX`).
    /// Callers use this to refuse enumerations that would blow up.
    pub fn enumeration_size(ty: &Type, universe: usize) -> u128 {
        match ty {
            Type::Unit => 1,
            Type::Ur => universe as u128,
            Type::Prod(a, b) => Value::enumeration_size(a, universe)
                .saturating_mul(Value::enumeration_size(b, universe)),
            Type::Set(elem) => {
                let n = Value::enumeration_size(elem, universe);
                if n >= 120 {
                    u128::MAX
                } else {
                    1u128 << (n as u32)
                }
            }
        }
    }

    /// Enumerate **all** values of the given type whose atoms are drawn from
    /// `universe`.  This is exponential (power sets!) and intended only for the
    /// small-universe bounded entailment checks used in tests; callers should
    /// keep `universe` and the type's set height tiny.
    pub fn enumerate(ty: &Type, universe: &[Atom]) -> Vec<Value> {
        match ty {
            Type::Unit => vec![Value::Unit],
            Type::Ur => universe.iter().map(|a| Value::Atom(*a)).collect(),
            Type::Prod(a, b) => {
                let va = Value::enumerate(a, universe);
                let vb = Value::enumerate(b, universe);
                let mut out = Vec::with_capacity(va.len() * vb.len());
                for x in &va {
                    for y in &vb {
                        out.push(Value::pair(x.clone(), y.clone()));
                    }
                }
                out
            }
            Type::Set(elem) => {
                let base = Value::enumerate(elem, universe);
                // all subsets of `base`
                let n = base.len();
                assert!(
                    n < 20,
                    "Value::enumerate would build 2^{n} sets; universe too large"
                );
                let mut out = Vec::with_capacity(1 << n);
                for mask in 0u32..(1u32 << n) {
                    let mut s = BTreeSet::new();
                    for (i, v) in base.iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            s.insert(v.clone());
                        }
                    }
                    out.push(Value::from_set(s));
                }
                out
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Atom(a) => write!(f, "{a}"),
            Value::Pair(a, b) => write!(f, "<{a}, {b}>"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_values_are_extensional() {
        let a = Value::set([Value::atom(1), Value::atom(2), Value::atom(1)]);
        let b = Value::set([Value::atom(2), Value::atom(1)]);
        assert_eq!(a, b);
        assert_eq!(a.as_set().unwrap().len(), 2);
    }

    #[test]
    fn typing_checks_structure() {
        let ty = Type::set(Type::prod(Type::Ur, Type::set(Type::Ur)));
        let good = Value::set([Value::pair(Value::atom(4), Value::set([Value::atom(6)]))]);
        let bad = Value::set([Value::pair(Value::atom(4), Value::atom(6))]);
        assert!(good.has_type(&ty));
        assert!(!bad.has_type(&ty));
        // empty set inhabits any set type
        assert!(Value::empty_set().has_type(&ty));
        assert!(Value::empty_set().has_type(&Type::set(Type::Unit)));
    }

    #[test]
    fn booleans_encode_as_set_unit() {
        assert!(Value::bool_true().as_bool().unwrap());
        assert!(!Value::bool_false().as_bool().unwrap());
        assert!(Value::from_bool(true).has_type(&Type::bool()));
        assert!(Value::atom(3).as_bool().is_err());
    }

    #[test]
    fn projections_and_accessors() {
        let p = Value::pair(Value::atom(1), Value::Unit);
        assert_eq!(p.proj1().unwrap(), &Value::atom(1));
        assert_eq!(p.proj2().unwrap(), &Value::Unit);
        assert!(Value::Unit.proj1().is_err());
        assert_eq!(p.as_pair().unwrap().0, &Value::atom(1));
        assert_eq!(Value::atom(7).as_atom().unwrap(), Atom::new(7));
        assert!(Value::Unit.as_atom().is_err());
    }

    #[test]
    fn tuple_builder_matches_type_tuple() {
        let v = Value::tuple(vec![Value::atom(1), Value::atom(2), Value::atom(3)]);
        let t = Type::tuple(vec![Type::Ur, Type::Ur, Type::Ur]);
        assert!(v.has_type(&t));
        assert_eq!(
            v,
            Value::pair(Value::atom(1), Value::pair(Value::atom(2), Value::atom(3)))
        );
    }

    #[test]
    fn set_operations() {
        let a = Value::set([Value::atom(1), Value::atom(2)]);
        let b = Value::set([Value::atom(2), Value::atom(3)]);
        assert_eq!(a.union(&b).unwrap().as_set().unwrap().len(), 3);
        assert_eq!(a.difference(&b).unwrap(), Value::set([Value::atom(1)]));
        assert_eq!(a.intersection(&b).unwrap(), Value::set([Value::atom(2)]));
        assert!(a.contains(&Value::atom(1)).unwrap());
        assert!(!a.contains(&Value::atom(3)).unwrap());
        assert!(Value::Unit.union(&a).is_err());
    }

    #[test]
    fn atoms_collects_active_domain() {
        let v = Value::set([
            Value::pair(Value::atom(4), Value::set([Value::atom(6), Value::atom(9)])),
            Value::pair(Value::atom(7), Value::empty_set()),
        ]);
        let atoms: Vec<u64> = v.atoms().into_iter().map(|a| a.id()).collect();
        assert_eq!(atoms, vec![4, 6, 7, 9]);
    }

    #[test]
    fn default_values_have_their_type() {
        for ty in [
            Type::Unit,
            Type::Ur,
            Type::prod(Type::Ur, Type::bool()),
            Type::set(Type::prod(Type::Ur, Type::Ur)),
        ] {
            assert!(Value::default_of(&ty).has_type(&ty));
        }
    }

    #[test]
    fn enumerate_small_types() {
        let atoms = [Atom::new(0), Atom::new(1)];
        assert_eq!(Value::enumerate(&Type::Unit, &atoms).len(), 1);
        assert_eq!(Value::enumerate(&Type::Ur, &atoms).len(), 2);
        assert_eq!(
            Value::enumerate(&Type::prod(Type::Ur, Type::Ur), &atoms).len(),
            4
        );
        // Set(U) over 2 atoms: 4 subsets
        assert_eq!(Value::enumerate(&Type::set(Type::Ur), &atoms).len(), 4);
        // Bool has exactly two elements regardless of the universe
        assert_eq!(Value::enumerate(&Type::bool(), &atoms).len(), 2);
        for v in Value::enumerate(&Type::set(Type::Ur), &atoms) {
            assert!(v.has_type(&Type::set(Type::Ur)));
        }
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(Value::Unit.size(), 1);
        assert_eq!(Value::pair(Value::atom(1), Value::atom(2)).size(), 3);
        assert_eq!(Value::set([Value::atom(1), Value::atom(2)]).size(), 3);
    }

    #[test]
    fn make_mut_copies_on_write_and_invalidates_the_hash() {
        let mut a = Value::set([Value::atom(1), Value::atom(2)])
            .as_set_value()
            .unwrap()
            .clone();
        let warm = a.hash64();
        let shared = a.clone();
        // mutating through the shared handle leaves the sibling untouched
        a.make_mut().insert(Value::atom(3));
        assert_eq!(a.len(), 3);
        assert_eq!(shared.len(), 2);
        assert_eq!(shared.hash64(), warm, "sibling keeps its cached hash");
        assert_ne!(a.hash64(), warm, "mutated set recomputes its hash");
        // sole-owner mutation is in place (no observable copy, same contract)
        drop(shared);
        a.make_mut().remove(&Value::atom(3));
        assert_eq!(
            Value::Set(a),
            Value::set([Value::atom(1), Value::atom(2)]),
            "canonical equality after in-place edits"
        );
    }

    #[test]
    fn display_is_stable() {
        let v = Value::set([Value::pair(Value::atom(2), Value::atom(1)), Value::Unit]);
        assert_eq!(v.to_string(), "{(), <a2, a1>}");
    }

    #[test]
    fn infer_type_agrees_with_has_type_on_nonempty() {
        let v = Value::set([Value::pair(Value::atom(1), Value::set([Value::atom(2)]))]);
        let ty = v.infer_type();
        assert!(v.has_type(&ty));
        assert_eq!(ty, Type::set(Type::prod(Type::Ur, Type::set(Type::Ur))));
    }
}
