//! JSON round-trips for the derived serde impls on the data-model types.
//!
//! `Name` has a hand-written impl (string transparent); everything else in
//! this crate derives through the offline serde stand-in, and these tests pin
//! the wire behaviour: round-trips are lossless and `Name` is encoded exactly
//! like the string it denotes.

use nrs_value::{Instance, Name, Schema, SubtypePath, SubtypeStep, Type, Value};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::Deserialize + std::fmt::Debug + PartialEq,
{
    let json = serde::json::to_string(value);
    serde::json::from_str(&json).unwrap_or_else(|e| panic!("bad round-trip via {json}: {e}"))
}

#[test]
fn values_round_trip() {
    let v = Value::set(vec![
        Value::pair(
            Value::atom(4),
            Value::set(vec![Value::atom(6), Value::atom(9)]),
        ),
        Value::pair(Value::atom(5), Value::set(vec![])),
        Value::Unit,
    ]);
    assert_eq!(roundtrip(&v), v);
}

#[test]
fn types_round_trip() {
    let ty = Type::set(Type::prod(
        Type::Ur,
        Type::set(Type::prod(Type::Unit, Type::Ur)),
    ));
    assert_eq!(roundtrip(&ty), ty);
    let path = SubtypePath(vec![
        SubtypeStep::First,
        SubtypeStep::Member,
        SubtypeStep::Second,
    ]);
    assert_eq!(roundtrip(&path), path);
}

#[test]
fn schemas_and_instances_round_trip_with_names_as_strings() {
    let schema = Schema::from_decls([
        (
            Name::new("B"),
            Type::set(Type::prod(Type::Ur, Type::set(Type::Ur))),
        ),
        (Name::new("V"), Type::relation(2)),
    ])
    .unwrap();
    assert_eq!(roundtrip(&schema), schema);

    let inst = Instance::from_bindings([
        (
            Name::new("S"),
            Value::set(vec![Value::atom(1), Value::atom(2)]),
        ),
        (Name::new("F"), Value::set(vec![Value::atom(2)])),
    ]);
    assert_eq!(roundtrip(&inst), inst);

    // The schema keys are interned names but must serialize as plain strings:
    // the JSON object keys are exactly the declared names.
    let json = serde::json::to_string(&inst);
    assert!(
        json.contains("\"S\""),
        "instance JSON should use string keys: {json}"
    );
    assert!(
        json.contains("\"F\""),
        "instance JSON should use string keys: {json}"
    );
}
