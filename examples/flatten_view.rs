//! The paper's running example (Examples 1.1 and 4.1): nested base data
//! `B : Set(𝔘 × Set(𝔘))`, its flattening view `V = {⟨π1 b, c⟩ | b ∈ B, c ∈ π2 b}`,
//! and the lossless constraints (the first component is a key, groups are
//! non-empty) under which `V` determines `B`.
//!
//! The example builds the Δ0 specification exactly as the paper does, checks
//! the view semantics and the determinacy property on concrete and bounded
//! instances, and reports whether the bundled bounded prover can find the
//! determinacy witness within a configurable budget (the paper notes that even
//! this "simple" example needs a proof several pages long, and leaves proof
//! search open — see §7).
//!
//! Run with `cargo run --release --example flatten_view [max_states]`.

use nested_synth::delta0::entail::{check_sequent_bounded, BoundedCheck};
use nested_synth::delta0::macros as d0;
use nested_synth::delta0::typing::TypeEnv;
use nested_synth::delta0::{InContext, Term};
use nested_synth::nrc::eval as nrc_eval;
use nested_synth::nrc::spec::flatten_view;
use nested_synth::prover::{prove, ProverConfig};
use nested_synth::value::generate::keyed_nested_instance;
use nested_synth::value::{Name, NameGen, Type};

fn main() {
    let row_ty = Type::prod(Type::Ur, Type::set(Type::Ur));
    let base_env = TypeEnv::from_pairs([(Name::new("B"), Type::set(row_ty.clone()))]);
    let mut gen = NameGen::new();

    // The view definition and its Δ0 input/output specification.
    let view = flatten_view("B", "V");
    let view_expr = view.to_nrc(&base_env, &mut gen).unwrap();
    let view_spec = view.io_spec(&base_env, &mut gen).unwrap();
    println!("flattening view as NRC:\n  {view_expr}\n");
    println!("its Δ0 input/output specification Σ_V(B, V):\n  {view_spec}\n");

    // The lossless constraints of Example 4.1.
    let key = d0::key_constraint(&Name::new("B"), &row_ty, &mut gen);
    let nonempty = d0::second_nonempty(&Name::new("B"), &mut gen);
    println!("Σ_lossless(B):\n  {key}\n  ∧ {nonempty}\n");

    // Evaluate the view on generated instances and sanity-check the spec.
    let inst = keyed_nested_instance(4, 3, 7);
    let v = nrc_eval::eval(&view_expr, &inst).unwrap();
    println!(
        "a lossless instance B:\n  {}",
        inst.get(&Name::new("B")).unwrap()
    );
    println!("its flattening V = {v}\n");
    assert_eq!(&v, inst.get(&Name::new("V")).unwrap());
    assert!(nested_synth::delta0::eval::eval_formula(&view_spec, &inst).unwrap());

    // Determinacy of B from V under the constraints, checked semantically on a
    // small bounded universe (every pair of instances agreeing on V and
    // satisfying the specification agrees on B).
    let phi = d0::and_all([view_spec.clone(), key.clone(), nonempty.clone()]);
    let phi2 = phi.subst_var(&Name::new("B"), &Term::var("B2"));
    let goal = d0::equiv(
        &Type::set(row_ty.clone()),
        &Term::var("B"),
        &Term::var("B2"),
        &mut gen,
    );
    let env = base_env
        .with(Name::new("B2"), Type::set(row_ty.clone()))
        .with(Name::new("V"), Type::relation(2));
    let outcome = check_sequent_bounded(
        &InContext::new(),
        &[phi.clone(), phi2.clone()],
        std::slice::from_ref(&goal),
        &env,
        &BoundedCheck {
            universe: 2,
            max_models: 2_000_000,
        },
    )
    .unwrap();
    println!("bounded semantic determinacy check (universe of 2 atoms): {outcome:?}\n");

    // Finally, attempt to find the proof witness with the bundled prover.  The
    // default budget is deliberately small; pass a larger max_states to push
    // further (the search is the open problem the paper discusses in §7).
    let max_states: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let cfg = ProverConfig {
        max_states,
        ..ProverConfig::default()
    };
    println!("searching for a determinacy proof witness (max {max_states} states)…");
    match prove(&InContext::new(), &[phi, phi2], &[goal], &cfg) {
        Ok((proof, stats)) => println!(
            "found a focused proof: {} nodes, {} states visited, {} risky instantiations",
            proof.size(),
            stats.visited,
            stats.risky_level
        ),
        Err(e) => println!(
            "no proof within this budget ({e}); supply a proof witness or raise the budget —\n\
             exactly the automation gap the paper identifies as future work"
        ),
    }
}
