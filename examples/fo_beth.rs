//! The flat-relational baseline (paper Appendix H): classical first-order
//! interpolation and Beth-style reasoning with the `nrs-fol` toolkit.
//!
//! We prove a small entailment splitting an implication chain across a
//! left/right signature partition, extract the Craig interpolant, and check
//! that it only uses the shared predicates — the mechanism behind both the
//! Segoufin–Vianu rewriting theorem and the paper's Theorem 4.
//!
//! Run with `cargo run --example fo_beth`.

use nested_synth::fol::{fo_interpolate, fo_prove, FoPartition, FoProverConfig};
use nested_synth::fol::{is_fo_focused, FoFormula};
use nested_synth::value::Name;

fn main() {
    // Left theory: every item in the Orders view satisfies the Audited predicate.
    // Right theory: every Audited item is Billable.
    // Consequence: every item in Orders is Billable.
    let left = FoFormula::forall(
        "x",
        FoFormula::implies(
            FoFormula::atom("Orders", vec!["x"]),
            FoFormula::atom("Audited", vec!["x"]),
        ),
    );
    let right = FoFormula::forall(
        "x",
        FoFormula::implies(
            FoFormula::atom("Audited", vec!["x"]),
            FoFormula::atom("Billable", vec!["x"]),
        ),
    );
    let goal = FoFormula::implies(
        FoFormula::atom("Orders", vec!["c"]),
        FoFormula::atom("Billable", vec!["c"]),
    );
    println!("left theory:  {left}");
    println!("right theory: {right}");
    println!("goal:         {goal}\n");

    let proof = fo_prove(
        &[left.clone(), right.clone()],
        std::slice::from_ref(&goal),
        &FoProverConfig::default(),
    )
    .expect("the chain is valid");
    println!(
        "found a proof with {} nodes (FO-focused: {})",
        proof.size(),
        is_fo_focused(&proof)
    );

    let partition = FoPartition::with_left([left.negate()]);
    let theta = fo_interpolate(&proof, &partition).expect("interpolation succeeds");
    println!("Craig interpolant between the two theories:\n  {theta}");
    println!("predicates used: {:?}", theta.predicates());
    assert!(!theta.predicates().contains(&Name::new("Billable")));
    assert!(
        !theta.predicates().contains(&Name::new("Orders"))
            || theta.predicates().contains(&Name::new("Audited"))
    );
    println!("\nthe interpolant stays within the shared vocabulary ✔");
}
