//! One observability surface over the whole pipeline: synthesis, the
//! incremental maintenance engine and the serving layer all record into
//! the same `nrs-obs` registry, so a single snapshot reports prover goal
//! counts, per-flush stage latencies and queue behaviour together.
//!
//! The example derives the partition rewriting (prover + synthesis
//! metrics), serves it through a batching writer thread (IVM + serve
//! metrics), then prints:
//!
//! 1. a human-readable digest of the key counters and latency quantiles,
//! 2. the full snapshot as JSON,
//! 3. the Prometheus text exposition (`ViewServer::metrics_text`) a
//!    `/metrics` endpoint would serve.
//!
//! Structured span traces are available too: pass a path as the third
//! argument (or set `NRS_OBS_JSON=<path>`) to write every span and event
//! as JSON lines; set `NRS_PROVER_TRACE=1` for a human-readable span feed
//! on stderr instead.
//!
//! Run with `cargo run --release --example observe_pipeline [size]
//! [updates] [span-jsonl-path]` (defaults: 500 base tuples, 64 updates,
//! no span file).

use nested_synth::obs;
use nested_synth::serve::{ServerConfig, ViewServer};
use nested_synth::synthesis::views::{partition_instance, partition_problem};
use nested_synth::synthesis::{SynthesisConfig, UpdateBatch};
use nested_synth::value::Value;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let updates: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    if let Some(path) = args.next() {
        let sink =
            obs::JsonLinesSink::to_file(std::path::Path::new(&path)).expect("span sink file");
        obs::install_sink(Arc::new(sink));
        println!("writing span trace to {path}");
    }

    // Synthesis: every prover goal, cache hit and proof size lands in the
    // registry (and in the structured per-goal SynthesisReport.metrics).
    let problem = partition_problem();
    let rewriting = problem
        .derive_rewriting(&SynthesisConfig::default())
        .expect("the partition views determine the query");
    let m = &rewriting.definition.report.metrics;
    println!(
        "synthesized: {} goals, memo hit rate {:.0}%, AST {} -> {} nodes",
        m.per_goal.len(),
        100.0 * m.memo_hit_rate(),
        m.raw_ast_size,
        m.simplified_ast_size,
    );

    // Serving: run a pipelined server with a writer thread so the queue,
    // batch and flush-stage instrumentation all see real traffic.
    let base = partition_instance(size, 42);
    let server = Arc::new(
        ViewServer::with_config(
            &rewriting,
            &base,
            ServerConfig {
                batch_window: Duration::from_micros(200),
                // small flushes so the batch/stage histograms get a
                // distribution, not a single point
                max_batch: 8,
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("server"),
    );
    let writer = server.start();
    for i in 0..updates {
        // fresh, non-cancelling tuples: every batch survives coalescing
        // and actually drives the maintenance engine
        let mut batch = UpdateBatch::new();
        if i % 2 == 0 {
            batch.insert("S", Value::atom(10_000 + i));
        } else {
            batch.insert("F", Value::atom(10_000 + i - 1));
        }
        server.submit(&batch).expect("submit");
    }
    let stats = writer.stop();
    assert_eq!(stats.batches, updates, "every batch flushed");
    assert_eq!(stats.dropped_batches, 0, "nothing dropped on a clean run");
    assert!(server.cross_check(&rewriting).expect("oracle"));

    // One snapshot, the whole pipeline.
    let snap = server.metrics_snapshot();
    println!("\n-- digest ------------------------------------------------");
    for counter in [
        "prover.goals_total",
        "prover.goal_cache_hits_total",
        "synth.goals_proved_total",
        "ivm.applies_total",
        "ivm.touched_members_total",
        "serve.submits_total",
        "serve.flushes_total",
        "serve.dropped_batches_total",
    ] {
        println!("  {counter:<32} {}", snap.counter(counter).unwrap_or(0));
    }
    for timer in ["serve.queue_wait_seconds", "serve.flush_seconds"] {
        if let Some(h) = snap.histogram(timer) {
            println!(
                "  {timer:<32} p50={:?} p99={:?} max={:?} (n={})",
                Duration::from_nanos(h.quantile(0.5)),
                Duration::from_nanos(h.quantile(0.99)),
                Duration::from_nanos(h.max),
                h.count,
            );
        }
    }
    println!(
        "  {:<32} {}",
        "serve.epoch",
        snap.gauge("serve.epoch").unwrap_or(0)
    );

    println!("\n-- snapshot json -----------------------------------------");
    println!("{}", snap.to_json());

    println!("\n-- prometheus exposition ---------------------------------");
    print!("{}", server.metrics_text());
}
