//! Quickstart: synthesize an explicit NRC definition from an implicit Δ0
//! specification (Theorem 2 of the paper), then evaluate and verify it.
//!
//! The scenario: a set `S : Set(𝔘)` is split by an unknown filter `F` into two
//! published views `V1 = {x ∈ S | x ∈̂ F}` and `V2 = {x ∈ S | ¬ x ∈̂ F}`.
//! The specification mentions `S`, `F`, `V1`, `V2`; the views implicitly
//! determine `S`, and the synthesizer recovers an NRC expression over
//! `V1`, `V2` alone (semantically, `V1 ∪ V2`).
//!
//! Run with `cargo run --example quickstart`.

use nested_synth::delta0::macros as d0;
use nested_synth::delta0::{Formula, Term};
use nested_synth::value::NameGen;
use nested_synth::{ImplicitSpec, Instance, Name, SynthesisConfig, Synthesizer, Type, Value};

fn main() {
    // 1. Build the Δ0 specification φ(V1, V2, F, S).
    let mut gen = NameGen::new();
    let ur = Type::Ur;
    let in_f = |x: &str, g: &mut NameGen| d0::member_hat(&ur, &Term::var(x), &Term::var("F"), g);
    let view = |vname: &str, positive: bool, gen: &mut NameGen| {
        let filt = if positive {
            in_f("x", gen)
        } else {
            in_f("x", gen).negate()
        };
        let sound = Formula::forall(
            "z",
            Term::var(vname),
            Formula::exists(
                "x",
                "S",
                Formula::and(filt.clone(), Formula::eq_ur("z", "x")),
            ),
        );
        let complete = Formula::forall(
            "x",
            "S",
            d0::implies(
                filt,
                d0::member_hat(&ur, &Term::var("x"), &Term::var(vname), gen),
            ),
        );
        Formula::and(sound, complete)
    };
    let spec = ImplicitSpec {
        formula: Formula::and(view("V1", true, &mut gen), view("V2", false, &mut gen)),
        inputs: vec![
            (Name::new("V1"), Type::set(Type::Ur)),
            (Name::new("V2"), Type::set(Type::Ur)),
        ],
        auxiliaries: vec![(Name::new("F"), Type::set(Type::Ur))],
        output: (Name::new("S"), Type::set(Type::Ur)),
    };
    println!("specification φ:\n  {}\n", spec.formula);

    // 2. Synthesize (this also finds the proof witnesses it needs).  The
    //    `Synthesizer` facade owns the prover session and the config — reuse
    //    it across specs and the proof caches stay warm.
    let synth = Synthesizer::with_config(SynthesisConfig::default()).check_determinacy(true);
    let def = synth.synthesize(&spec).expect("the views determine S");
    println!(
        "synthesized definition of S over {{V1, V2}}:\n  {}\n",
        def.expr()
    );
    println!(
        "proof search: {} goals, {} states visited, proof sizes {:?}\n",
        def.report.goals_proved, def.report.states_visited, def.report.proof_sizes
    );

    // 3. Evaluate the definition on a concrete instance and verify it.
    let s = Value::set([
        Value::atom(1),
        Value::atom(2),
        Value::atom(3),
        Value::atom(5),
    ]);
    let f = Value::set([Value::atom(2), Value::atom(5), Value::atom(9)]);
    let v1 = s.intersection(&f).unwrap();
    let v2 = s.difference(&f).unwrap();
    let inst = Instance::from_bindings([
        (Name::new("S"), s.clone()),
        (Name::new("F"), f),
        (Name::new("V1"), v1.clone()),
        (Name::new("V2"), v2.clone()),
    ]);
    let produced = def.evaluate(&inst).unwrap();
    println!("V1 = {v1}");
    println!("V2 = {v2}");
    println!("synthesized S = {produced}");
    println!("original    S = {s}");
    assert_eq!(def.check_against(&inst).unwrap(), Some(true));
    println!("\nthe synthesized definition reproduces S exactly ✔");
}
