//! Serving a maintained rewriting: epoch-published snapshots, validated
//! transactional ingest, and graceful degradation.
//!
//! Where `streaming_views` drives the maintenance engine directly, this
//! example runs it as a *service*: a `ViewServer` validates incoming
//! batches against the base schema, applies everything queued as one
//! transaction, and publishes each successful epoch as an immutable
//! `Arc<Snapshot>` — so readers on other threads keep serving the previous
//! epoch while a flush is in flight, and a rejected batch changes nothing.
//!
//! Run with `cargo run --release --example serve_views [size] [updates]`
//! (defaults: 2000 base tuples, 200 updates).

use nested_synth::serve::{NrsError, ServerConfig, ViewServer};
use nested_synth::synthesis::views::{partition_instance, partition_problem};
use nested_synth::synthesis::{SynthesisConfig, UpdateBatch};
use nested_synth::value::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let updates: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);

    let problem = partition_problem();
    let rewriting = problem
        .derive_rewriting(&SynthesisConfig::default())
        .expect("the partition views determine the query");
    let base = partition_instance(size, 42);
    let t0 = Instant::now();
    let server = Arc::new(ViewServer::new(&rewriting, &base).expect("server"));
    println!(
        "serving |S|={size} at epoch {} after {:.1?}",
        server.epoch(),
        t0.elapsed()
    );

    // Concurrent readers: each holds whatever epoch was current when it
    // asked, and is never blocked (or torn) by the writer below.
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut reads = 0u64;
                while last < updates / 2 {
                    let snap = server.snapshot();
                    assert!(snap.epoch >= last, "epochs move forward only");
                    assert!(
                        snap.answer().as_set().is_ok(),
                        "reader {r} saw a torn answer"
                    );
                    last = snap.epoch;
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // Malformed input is rejected with a typed error and changes nothing.
    let mut bad = UpdateBatch::new();
    bad.insert("Nope", Value::atom(1));
    match server.submit(&bad) {
        Err(e @ NrsError::Rejected(_)) => println!("rejected as expected: {e}"),
        other => panic!("expected a rejection, got {other:?}"),
    }
    assert_eq!(server.epoch(), 0, "a rejected batch publishes nothing");

    // The write path: validated single-batch rounds, one epoch each.
    let t0 = Instant::now();
    for i in 0..updates {
        let mut batch = UpdateBatch::new();
        match i % 4 {
            0 => batch.insert("S", Value::atom(10_000 + i)),
            1 => batch.insert("F", Value::atom(10_000 + i - 1)),
            2 => batch.delete("S", Value::atom(10_000 + i - 2)),
            _ => batch.delete("F", Value::atom(10_000 + i - 3)),
        };
        server.apply(&batch).expect("serve round");
    }
    let elapsed = t0.elapsed();
    println!(
        "served {updates} update rounds in {elapsed:.1?} ({:.1} µs/round), now at epoch {}",
        elapsed.as_secs_f64() * 1e6 / updates as f64,
        server.epoch()
    );

    let reads: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    println!("readers performed {reads} consistent snapshot reads concurrently");

    // Batched ingest: queued submissions coalesce into one epoch.
    let before = server.epoch();
    let mut b1 = UpdateBatch::new();
    b1.insert("S", Value::atom(99_991));
    let mut b2 = UpdateBatch::new();
    b2.insert("S", Value::atom(99_992));
    b2.delete("S", Value::atom(99_991));
    server.submit(&b1).expect("queue b1");
    server.submit(&b2).expect("queue b2");
    let report = server.flush().expect("flush");
    println!(
        "coalesced {} queued batches into epoch {} (answer delta: {} tuples)",
        2,
        report.snapshot.epoch,
        report.answer_delta.len()
    );
    assert_eq!(report.snapshot.epoch, before + 1);

    // The pipelined path: a bounded ingest queue plus a dedicated batching
    // writer thread decouple producers from the flush cost — coalescing,
    // the exactness check, the engine pass and the epoch publication are
    // paid once per batch window, not once per update.
    let pipe = Arc::new(
        ViewServer::with_config(
            &rewriting,
            &base,
            ServerConfig {
                queue_capacity: 4,
                batch_window: Duration::from_micros(200),
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("pipelined server"),
    );
    // Before the writer runs, the bounded queue pushes back with a typed,
    // transient error instead of growing without bound.
    let mut queued = 0u64;
    loop {
        let mut b = UpdateBatch::new();
        b.insert("S", Value::atom(50_000 + queued));
        match pipe.try_submit(&b) {
            Ok(()) => queued += 1,
            Err(e) => {
                assert!(e.is_backpressure() && e.is_transient());
                println!("queue full after {queued} batches: {e}");
                break;
            }
        }
    }
    let writer = pipe.start();
    let t0 = Instant::now();
    for j in queued..updates.max(queued) {
        let mut b = UpdateBatch::new();
        b.insert("S", Value::atom(50_000 + j));
        pipe.submit(&b).expect("blocking submit");
    }
    let stats = writer.stop();
    assert_eq!(stats.batches, updates.max(queued), "every batch flushed");
    assert_eq!(
        stats.errors, 0,
        "clean pipeline run: {:?}",
        stats.last_error
    );
    println!(
        "pipelined {} batches in {:.1?} through {} flushes, now at epoch {}",
        stats.batches,
        t0.elapsed(),
        stats.flushes,
        pipe.epoch()
    );
    assert!(
        pipe.cross_check(&rewriting).expect("oracle"),
        "pipelined state diverged from the naive oracle"
    );

    // With `--features fault-injection`, demonstrate the failure path too:
    // fail the publish site of one round, observe the typed error and the
    // unchanged epoch, then verify the retried batch converges.
    #[cfg(feature = "fault-injection")]
    {
        use nested_synth::ivm::fault::{FaultPlan, FaultScope};
        let epoch_before = server.epoch();
        let mut batch = UpdateBatch::new();
        batch.insert("S", Value::atom(123_456));
        // discovery: count the sites one round reaches, then fail the last
        // one (the publish point) on a re-run
        let hits = {
            let mut probe = UpdateBatch::new();
            probe.insert("S", Value::atom(123_457));
            let scope = FaultScope::new(FaultPlan::count_only());
            server.apply(&probe).expect("discovery round");
            scope.hits()
        };
        let err = {
            let _scope = FaultScope::new(FaultPlan::fail_nth(hits - 1));
            server
                .apply(&batch)
                .expect_err("injected fault must surface")
        };
        println!("injected fault surfaced as: {err}");
        assert_eq!(
            server.epoch(),
            epoch_before + 1,
            "the faulted round published nothing (only the discovery round did)"
        );
        // the transiently failed batch was re-queued in place, so the retry
        // is a bare flush — no resubmission (resubmitting would coalesce a
        // duplicate insert of the same tuple and be rejected as inexact)
        assert_eq!(server.pending_len(), 1, "the failed batch stays queued");
        let report = server.flush().expect("clean retry");
        println!("retried batch converged at epoch {}", report.snapshot.epoch);
    }

    // Nothing was degraded along the way, and the oracle agrees.
    let coverage = server.coverage();
    assert!(
        coverage.fully_incremental(),
        "no operator should have degraded on this clean run"
    );
    assert!(
        server.cross_check(&rewriting).expect("oracle"),
        "served state diverged from the naive oracle"
    );
    println!("coverage: {coverage}");
}
