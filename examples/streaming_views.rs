//! Streaming view maintenance: synthesize a rewriting once, then keep its
//! answer live under a stream of single-tuple base updates.
//!
//! The scenario is the paper's headline use case run as a service: the
//! partition problem's views `V1 = S ∩ F`, `V2 = S ∖ F` determine the query
//! `Q = S`, synthesis produces the rewriting over the views, and the
//! `MaintainedRewriting` handle keeps base → views → answer materialized
//! incrementally — O(|Δ|·log n) per batch instead of re-running the plans.
//!
//! Run with `cargo run --release --example streaming_views [size] [updates]`
//! (defaults: 2000 base tuples, 200 updates).

use nested_synth::synthesis::ivm::MaintainedRewriting;
use nested_synth::synthesis::views::{partition_instance, partition_problem};
use nested_synth::synthesis::{SynthesisConfig, UpdateBatch};
use nested_synth::value::Value;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let updates: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);

    let problem = partition_problem();
    let t0 = Instant::now();
    let rewriting = problem
        .derive_rewriting(&SynthesisConfig::default())
        .expect("the partition views determine the query");
    println!(
        "synthesized rewriting {} in {:.1?}",
        rewriting.expr(),
        t0.elapsed()
    );

    let base = partition_instance(size, 42);
    let t0 = Instant::now();
    let mut maintained = MaintainedRewriting::new(&rewriting, &base).expect("materialize");
    println!(
        "materialized views + answer over |S|={size} in {:.1?} (answer: {} tuples)",
        t0.elapsed(),
        maintained.answer().as_set().map(|s| s.len()).unwrap_or(0)
    );

    // Stream updates: inserts of fresh atoms into S and F, deletions of
    // earlier ones — every batch flows base → ΔV1/ΔV2 → Δanswer.
    let t0 = Instant::now();
    let mut touched = 0usize;
    for i in 0..updates {
        let mut batch = UpdateBatch::new();
        // i=0: S gains a fresh atom; i=1: F gains the same atom (flipping it
        // from V2 to V1); i=2,3: both copies are deleted again — so every
        // batch, deletions included, takes effect.
        match i % 4 {
            0 => batch.insert("S", Value::atom(10_000 + i)),
            1 => batch.insert("F", Value::atom(10_000 + i - 1)),
            2 => batch.delete("S", Value::atom(10_000 + i - 2)),
            _ => batch.delete("F", Value::atom(10_000 + i - 3)),
        };
        let delta = maintained.apply(&batch).expect("maintenance step");
        touched += delta.len();
    }
    let elapsed = t0.elapsed();
    println!(
        "applied {updates} single-tuple updates in {elapsed:.1?} ({:.1} µs/update, {touched} answer tuples touched)",
        elapsed.as_secs_f64() * 1e6 / updates as f64
    );
    assert!(
        touched > 0,
        "the update stream must actually change the answer"
    );

    // The maintained pipeline is exactly what recomputation produces: check
    // against the optimized plan pipeline at any size, and against the
    // naive-evaluator oracle too while it is affordable (it is quadratic in
    // the base size on this rewriting).
    let t0 = Instant::now();
    let fresh_views = nested_synth::synthesis::materialize_views(&problem, maintained.base())
        .expect("re-materialize");
    let fresh_answer = rewriting
        .answer_from_views(&fresh_views)
        .expect("re-evaluate");
    assert_eq!(
        maintained.answer(),
        &fresh_answer,
        "maintained answer diverged from plan recomputation"
    );
    println!(
        "cross-checked against full plan recomputation in {:.1?} — consistent",
        t0.elapsed()
    );
    if size <= 600 {
        let t0 = Instant::now();
        assert!(
            maintained.cross_check(&rewriting).expect("oracle check"),
            "maintained answer diverged from the naive oracle"
        );
        println!(
            "cross-checked against the naive-evaluator oracle in {:.1?} — consistent",
            t0.elapsed()
        );
    }
}
