//! A small "data warehouse" scenario for view-based rewriting (Corollary 3).
//!
//! A warehouse stores a product table `S` (product ids) and a recall list `F`.
//! Two flat views are published: `V1` (recalled products) and `V2` (products
//! not recalled).  Analysts only see the views; the rewriting synthesized from
//! the determinacy proof answers the "all products" query directly from them.
//! A second, optional part of the example runs the classical lossless-join
//! decomposition (key-based) through the same pipeline; its proof goals take
//! noticeably longer, so it is gated behind an argument.
//!
//! Run with `cargo run --release --example warehouse_nesting [join]`.

use nested_synth::synthesis::views::{
    lossless_join_instance, lossless_join_problem, materialize_views, partition_instance,
    partition_problem,
};
use nested_synth::synthesis::SynthesisConfig;
use nested_synth::value::Name;
use std::time::Instant;

fn main() {
    // Part 1: the partitioned-views problem.
    let problem = partition_problem();
    println!("views:");
    for v in &problem.views {
        println!("  {} = {:?}", v.name, v.def);
    }
    println!("query: {} = base set S\n", problem.query.name);

    let cfg = SynthesisConfig {
        check_determinacy: true,
        ..Default::default()
    };
    let t0 = Instant::now();
    let rewriting = problem
        .derive_rewriting(&cfg)
        .expect("views determine the query");
    println!(
        "synthesized rewriting over the views (in {:?}):\n  {}\n",
        t0.elapsed(),
        rewriting.expr()
    );

    for (rows, seed) in [(10usize, 1u64), (100, 2), (500, 3)] {
        let base = partition_instance(rows, seed);
        let views = materialize_views(&problem, &base).unwrap();
        let t_views = Instant::now();
        let from_views = rewriting.answer_from_views(&views).unwrap();
        let views_time = t_views.elapsed();
        let ok = rewriting.verify_on_base(&base).unwrap();
        println!(
            "|S| ≈ {rows}: answered from views in {views_time:?}, {} tuples, matches direct evaluation: {ok}",
            from_views.as_set().map(|s| s.len()).unwrap_or(0),
        );
        assert!(ok);
    }

    // Part 2 (optional, slower): the lossless key-join decomposition.
    if std::env::args().any(|a| a == "join") {
        println!("\nlossless key-join decomposition (this runs several longer proof searches)…");
        let join = lossless_join_problem();
        let cfg = SynthesisConfig::default();
        let t0 = Instant::now();
        match join.derive_rewriting(&cfg) {
            Ok(result) => {
                println!(
                    "rewriting found in {:?}:\n  {}",
                    t0.elapsed(),
                    result.expr()
                );
                let base = lossless_join_instance(4, 9);
                println!(
                    "verified on a 4-row instance: {}",
                    result.verify_on_base(&base).unwrap()
                );
                let _ = base.get(&Name::new("R"));
            }
            Err(e) => println!("not derived within the default budgets: {e}"),
        }
    } else {
        println!("\n(pass `join` as an argument to also run the lossless key-join decomposition)");
    }
}
