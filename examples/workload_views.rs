//! Workload synthesis end to end: many query templates, one shared view
//! set, one serving epoch per flush.
//!
//! The scenario: a base `S, F` published through the partition views
//! `V1 = S ∩ F` and `V2 = S \ F`, with several overlapping query templates
//! (the whole set, the filtered half, its complement, and a duplicate of
//! the first).  A single `derive_workload` call
//!
//! * pre-walks every query's proof obligations into **one** deduplicated
//!   goal batch — identical goals across templates are proved once,
//! * rewrites each query over the views, and
//! * hoists fragments shared across the rewritings into named shared
//!   views,
//!
//! then `ViewServer::builder().serve_workload(...)` maintains every shared
//! view **once per update batch** and publishes one epoch with all named
//! answers.
//!
//! Run with `cargo run --release --example workload_views [size] [updates]`
//! (defaults: 1000 base tuples, 100 updates).

use nested_synth::synthesis::views::partition_instance;
use nested_synth::{SynthesisConfig, Synthesizer, UpdateBatch, Value, ViewServer, WorkloadProblem};

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let updates: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);

    // 1. The multi-query problem: 4 overlapping templates over one view set.
    let problem: WorkloadProblem = nested_synth::synthesis::overlapping_workload_problem(4);
    println!(
        "workload: {} queries over {} views",
        problem.queries.len(),
        problem.views.len()
    );

    // 2. One synthesis pass for the whole workload, through the facade.
    let synth = Synthesizer::with_config(SynthesisConfig::default());
    let rewriting = synth
        .derive_workload(&problem)
        .expect("the views determine every query");
    let report = rewriting.report();
    println!(
        "goals: {} recorded, {} deduplicated across queries, {} states visited",
        report.goals_recorded, report.shared_goals_dedup, report.synthesis.states_visited
    );
    for (name, def) in rewriting.queries() {
        println!("  {name} := {}", def.expr());
    }
    let shared = rewriting.shared();
    println!(
        "shared view set: {} hoisted fragment(s), {} occurrence(s) collapsed",
        shared.views.len(),
        shared.fragments_collapsed
    );
    for (name, expr) in &shared.views {
        println!("  {name} := {expr}");
    }

    // 3. Serve it: every shared view maintained once per flush, one epoch
    //    covering every named answer.
    let base = partition_instance(size, 42);
    let server = ViewServer::builder()
        .max_batch(64)
        .serve_workload(&rewriting, &base)
        .expect("server");
    println!(
        "\nserving |S|={size}: epoch {} with {} named answers",
        server.epoch(),
        server.snapshot().answers().len()
    );

    for i in 0..updates {
        let mut batch = UpdateBatch::new();
        let v = Value::atom(1_000_000 + i);
        batch.insert("S", v.clone());
        if i % 2 == 0 {
            batch.insert("F", v);
        }
        server.apply(&batch).expect("apply");
    }
    let snap = server.snapshot();
    println!(
        "applied {updates} update batches; now at epoch {}",
        snap.epoch
    );
    for (name, value) in snap.answers() {
        println!(
            "  {name}: {} element(s)",
            value.as_set().map(|s| s.len()).unwrap_or(0)
        );
    }
    assert!(
        server
            .cross_check_workload(&rewriting)
            .expect("oracle re-evaluation"),
        "maintained answers diverged from the naive oracle"
    );
    println!("\nevery answer matches the from-scratch oracle ✔");
}
