#!/usr/bin/env bash
# Amortization gate for the pipelined serving path: the batched flush must
# keep the *per-update* cost (serve_update_batched_x64 / 64) within a factor
# of the bare maintenance round (ivm_single) at the same base size.  This is
# the scale-out promise of the ingest pipeline — coalescing, the exactness
# check, the engine pass and snapshot publication are paid once per flush,
# not once per update — and this check stops it from silently eroding.
#
# Both benches come from the same summary file, so no machine calibration is
# needed: the ratio is dimensionless on one box.
#
# Usage:
#   scripts/amortization_check.sh <summary.json> [size] [factor]
#
# Defaults: size = 1000 (the smoke-run size), factor = 3.0 (the ROADMAP
# acceptance bound).  Summaries are the one-bench-per-line JSON emitted by
# scripts/bench.sh.

set -euo pipefail
cd "$(dirname "$0")/.."

summary="${1:?usage: scripts/amortization_check.sh <summary.json> [size] [factor]}"
size="${2:-1000}"
factor="${3:-3.0}"

if [ ! -r "$summary" ]; then
    echo "amortization_check: summary file '$summary' does not exist or is unreadable" >&2
    exit 2
fi

min_of() {
    local file="$1" name="$2"
    grep -F "\"bench\":\"${name}\"" "$file" |
        sed 's/.*"min_ns":\([0-9.eE+-]*\).*/\1/' |
        head -n1
}

batched="$(min_of "$summary" "serve_update_batched_x64/${size}")"
single="$(min_of "$summary" "ivm_single/${size}")"

missing=0
[ -z "$batched" ] && { echo "amortization_check: MISSING - serve_update_batched_x64/${size} not in $summary" >&2; missing=1; }
[ -z "$single" ] && { echo "amortization_check: MISSING - ivm_single/${size} not in $summary" >&2; missing=1; }
[ "$missing" -ne 0 ] && exit 2

awk -v b="$batched" -v s="$single" -v k="$factor" -v sz="$size" 'BEGIN {
    per_update = b / 64;
    ratio = per_update / s;
    printf "amortization_check: batched flush at |S|=%s costs %.0f ns / 64 = %.0f ns per update; bare ivm_single %.0f ns; ratio %.2fx, limit %.1fx\n",
        sz, b, per_update, s, ratio, k;
    if (ratio > k) {
        printf "amortization_check: REGRESSION - amortized per-update cost is %.2fx the bare maintenance round\n",
            ratio > "/dev/stderr";
        exit 1;
    }
}'
