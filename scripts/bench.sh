#!/usr/bin/env bash
# Run the Criterion bench suite and distill the BENCH_JSON lines every
# benchmark emits into one JSON summary — the seed for the repository's
# BENCH_*.json trajectory.
#
# Usage:
#   scripts/bench.sh                 # full run, writes bench-results/BENCH_<date>.json
#   scripts/bench.sh out.json        # full run, explicit output path
#   scripts/bench.sh --fast [out]    # smoke run (seconds, noisy numbers)
#   NRS_BENCH_FAST=1 scripts/bench.sh   # same smoke run, via the env knob
#
# Each element of the "benches" array is one benchmark:
#   {"group":"E4_proof_search","bench":"subset_chain/2",
#    "mean_ns":…,"min_ns":…,"max_ns":…,"samples":…}

set -euo pipefail
cd "$(dirname "$0")/.."

case "${1:-}" in
-h | --help)
    sed -n '2,14p' "$0" | sed 's/^# \{0,1\}//'
    exit 0
    ;;
--fast)
    export NRS_BENCH_FAST=1
    shift
    ;;
esac

case "${1:-}" in
-*)
    echo "unknown option: $1 (try --help)" >&2
    exit 2
    ;;
esac

out="${1:-bench-results/BENCH_$(date -u +%Y%m%d).json}"
mkdir -p -- "$(dirname -- "$out")"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running cargo bench (logs: $raw)…" >&2
# The root package is the umbrella crate; the Criterion benches live in the
# nrs-bench package, so target it explicitly.  The `|| true` covers only
# grep's no-match exit; a cargo failure still aborts via pipefail.
cargo bench -p nrs-bench 2>&1 | tee "$raw" | { grep -v '^BENCH_JSON ' || true; }

{
    printf '{\n'
    printf '  "schema": "nrs-bench-summary/v1",\n'
    printf '  "generated_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "fast_mode": %s,\n' "$([ -n "${NRS_BENCH_FAST:-}" ] && echo true || echo false)"
    printf '  "rustc": "%s",\n' "$(rustc --version)"
    printf '  "benches": [\n'
    (grep '^BENCH_JSON ' "$raw" || true) | sed 's/^BENCH_JSON //' | sed '$!s/$/,/' | sed 's/^/    /'
    printf '  ]\n'
    printf '}\n'
} > "$out"

count="$(grep -c '^BENCH_JSON ' "$raw" || true)"
echo "wrote $out ($count benchmarks)" >&2
