#!/usr/bin/env bash
# Bench-regression smoke check: compare a benchmark between a fresh summary
# (e.g. from `scripts/bench.sh --fast ci-bench.json`) and the checked-in
# reference summary, failing when it regresses by more than a tolerance
# factor.
#
# The comparison is **machine-calibrated**: raw nanoseconds are divided by a
# baseline benchmark measured in the same run (default:
# `recompute_from_base/100`, the naive evaluation of the same workload).  A
# slower CI runner slows both sides equally, so the calibrated ratio isolates
# genuine regressions of the optimized path (losing the hash-join/membership
# recognition would show up as a 100–1000x blow-up, far past any tolerance).
#
# Usage:
#   scripts/bench_check.sh <fresh.json> [reference.json] [bench] [factor] [calib]
#
# `bench` may be a comma-separated list; every listed benchmark must pass the
# same calibrated tolerance (the gate covers evaluation-bound, prover-bound
# and IVM benchmarks in CI).
#
# Before any comparison, every requested bench (and the calibration bench) is
# resolved against *both* summaries; if anything is missing, the check fails
# with one line per missing (bench, file) pair instead of a bare parse error.
#
# Defaults: reference = BENCH_pr10.json, bench = from_views/100, factor = 2.0,
# calib = recompute_from_base/100.  Summaries are the one-bench-per-line JSON
# emitted by scripts/bench.sh.

set -euo pipefail
cd "$(dirname "$0")/.."

fresh="${1:?usage: scripts/bench_check.sh <fresh.json> [reference.json] [bench[,bench…]] [factor] [calib]}"
reference="${2:-BENCH_pr10.json}"
benches="${3:-from_views/100}"
factor="${4:-2.0}"
calib="${5:-recompute_from_base/100}"

for file in "$fresh" "$reference"; do
    if [ ! -r "$file" ]; then
        echo "bench_check: summary file '$file' does not exist or is unreadable" >&2
        exit 2
    fi
done

min_of() {
    # Extract min_ns for the named bench from a bench.sh summary.  Each bench
    # is a single line, so line-oriented tools are enough.  Minima are far
    # more stable than means for the ~100 us benches being ratioed here:
    # scheduler noise inflates individual samples but rarely deflates them.
    local file="$1" name="$2"
    grep -F "\"bench\":\"${name}\"" "$file" |
        sed 's/.*"min_ns":\([0-9.eE+-]*\).*/\1/' |
        head -n1
}

# Resolve every (bench, file) pair up front so a missing benchmark fails the
# check with a complete, per-bench report rather than a parse error on the
# first gap.
missing=0
for bench in ${benches//,/ } "$calib"; do
    for file in "$fresh" "$reference"; do
        if [ -z "$(min_of "$file" "$bench")" ]; then
            echo "bench_check: MISSING - bench '$bench' not found in $file" >&2
            missing=1
        fi
    done
done
if [ "$missing" -ne 0 ]; then
    echo "bench_check: aborting - the summaries above do not cover the requested benches" >&2
    exit 2
fi

fresh_calib="$(min_of "$fresh" "$calib")"
ref_calib="$(min_of "$reference" "$calib")"

status=0
for bench in ${benches//,/ }; do
    fresh_mean="$(min_of "$fresh" "$bench")"
    ref_mean="$(min_of "$reference" "$bench")"

    awk -v fm="$fresh_mean" -v fc="$fresh_calib" \
        -v rm="$ref_mean" -v rc="$ref_calib" \
        -v k="$factor" -v b="$bench" -v c="$calib" 'BEGIN {
        fresh_rel = fm / fc;
        ref_rel = rm / rc;
        ratio = fresh_rel / ref_rel;
        printf "bench_check: %s = %.0f ns (%.2fx of %s) vs reference %.0f ns (%.2fx); calibrated ratio %.2fx, limit %.1fx\n",
            b, fm, fresh_rel, c, rm, ref_rel, ratio, k;
        if (ratio > k) {
            printf "bench_check: REGRESSION - %s is %.2fx slower (machine-calibrated) than the checked-in summary\n",
                b, ratio > "/dev/stderr";
            exit 1;
        }
    }' || status=1
done
exit "$status"
