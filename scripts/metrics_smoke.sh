#!/usr/bin/env bash
# Observability smoke check: run the observe_pipeline example end-to-end
# (synthesis -> pipelined serving -> metrics snapshot) and validate its
# three machine-readable outputs:
#
#   1. the JSON-lines span trace — every line parses as one JSON object,
#      span starts and ends balance, and the trace covers all pipeline
#      layers (synthesis, prover, IVM engine, serving);
#   2. the metrics snapshot JSON — parses, and reports every layer's
#      metric families from the one shared registry;
#   3. the Prometheus text exposition — every sample line is well-formed,
#      the gated families are present, and every histogram carries the
#      mandatory le="+Inf" bucket plus _sum/_count samples.
#
# Usage: scripts/metrics_smoke.sh [size] [updates]
# (defaults: 300 base tuples, 32 updates — seconds, not minutes)

set -euo pipefail
cd "$(dirname "$0")/.."

size="${1:-300}"
updates="${2:-32}"

if ! command -v jq >/dev/null; then
    echo "metrics_smoke: jq is required" >&2
    exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
spans="$tmp/spans.jsonl"
out="$tmp/out.txt"

cargo run -q --release --example observe_pipeline "$size" "$updates" "$spans" >"$out"

fail=0
check() { # check <description> <ok: 0|nonzero>
    if [ "$2" -eq 0 ]; then
        echo "metrics_smoke: ok   - $1"
    else
        echo "metrics_smoke: FAIL - $1" >&2
        fail=1
    fi
}

# --- 1. the JSON-lines span trace ------------------------------------
jq -es 'length > 0' "$spans" >/dev/null 2>&1
check "span trace is non-empty valid JSON lines" $?

starts="$(jq -s '[.[] | select(.kind == "start")] | length' "$spans")"
ends="$(jq -s '[.[] | select(.kind == "end")] | length' "$spans")"
[ "$starts" -gt 0 ] && [ "$starts" -eq "$ends" ]
check "span starts balance span ends ($starts/$ends)" $?

jq -s 'map(select(.kind == "end")) | all(.elapsed_ns >= 0)' "$spans" |
    grep -q true
check "every span end carries elapsed_ns" $?

for name in synth.run prover.goal ivm.apply serve.flush serve.publish; do
    jq -es --arg n "$name" 'any(.[]; .name == $n)' "$spans" >/dev/null 2>&1
    check "span trace covers $name" $?
done

# --- 2. the metrics snapshot JSON ------------------------------------
snapshot="$(grep -m1 '^{"metrics":' "$out" || true)"
[ -n "$snapshot" ] && jq -e '.metrics | length > 0' <<<"$snapshot" >/dev/null
check "snapshot JSON parses with metrics" $?

for family in prover.goals_total synth.runs_total ivm.applies_total \
    serve.flushes_total serve.dropped_batches_total serve.queue_depth \
    serve.flush_seconds; do
    jq -e --arg n "$family" '.metrics | any(.name == $n)' \
        <<<"$snapshot" >/dev/null 2>&1
    check "snapshot reports $family" $?
done

# --- 3. the Prometheus exposition ------------------------------------
prom="$tmp/metrics.prom"
sed -n '/^-- prometheus exposition/,$p' "$out" | sed 1d >"$prom"
[ -s "$prom" ]
check "prometheus exposition present" $?

# every non-comment line is `name{labels} value` or `name value` with a
# numeric value; every # line is a well-formed TYPE comment
awk '
    /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$/ { next }
    /^#/ { bad = 1; exit }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ { next }
    /^$/ { next }
    { bad = 1; exit }
    END { exit bad }
' "$prom"
check "every exposition line is well-formed" $?

for family in nrs_prover_goals_total nrs_synth_runs_total \
    nrs_ivm_applies_total nrs_serve_flushes_total \
    nrs_serve_dropped_batches_total nrs_serve_queue_depth; do
    grep -q "^# TYPE $family " "$prom"
    check "exposition carries $family" $?
done

# histogram invariants: each declared histogram has +Inf, _sum and _count
while read -r hist; do
    grep -qF "${hist}_bucket{le=\"+Inf\"}" "$prom" &&
        grep -q "^${hist}_sum " "$prom" &&
        grep -q "^${hist}_count " "$prom"
    check "histogram $hist has +Inf bucket, _sum and _count" $?
done < <(awk '/^# TYPE .* histogram$/ { print $3 }' "$prom")

if [ "$fail" -ne 0 ]; then
    echo "metrics_smoke: FAILED (outputs kept in $tmp)" >&2
    trap - EXIT
    exit 1
fi
echo "metrics_smoke: all checks passed"
