//! # nested-synth
//!
//! Umbrella crate for the *Synthesizing Nested Relational Queries from
//! Implicit Specifications* reproduction.  It re-exports every sub-crate so
//! the examples, integration tests and downstream users can depend on a single
//! crate.
//!
//! See `README.md` for a tour, the crate map and the pipeline diagram.

pub use nrs_delta0 as delta0;
pub use nrs_fol as fol;
pub use nrs_interp as interp;
pub use nrs_ivm as ivm;
pub use nrs_nrc as nrc;
pub use nrs_obs as obs;
pub use nrs_proof as proof;
pub use nrs_prover as prover;
pub use nrs_serve as serve;
pub use nrs_synthesis as synthesis;
pub use nrs_value as value;
