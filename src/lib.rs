//! # nested-synth
//!
//! Umbrella crate for the *Synthesizing Nested Relational Queries from
//! Implicit Specifications* reproduction.  It re-exports every sub-crate so
//! the examples, integration tests and downstream users can depend on a single
//! crate.
//!
//! See `README.md` for a tour, the crate map and the pipeline diagram.

pub use nrs_delta0 as delta0;
pub use nrs_fol as fol;
pub use nrs_interp as interp;
pub use nrs_ivm as ivm;
pub use nrs_nrc as nrc;
pub use nrs_obs as obs;
pub use nrs_proof as proof;
pub use nrs_prover as prover;
pub use nrs_serve as serve;
pub use nrs_synthesis as synthesis;
pub use nrs_value as value;

// The one-`use` surface: the types a consumer needs to go from an implicit
// specification (or a whole workload of them) to a served, incrementally
// maintained answer.  `use nested_synth::{Synthesizer, Workload, ViewServer,
// UpdateBatch, NrsError};` covers the pipeline end to end — see
// `examples/quickstart.rs` and `examples/workload_views.rs`.
pub use nrs_ivm::{DeltaSet, UpdateBatch};
pub use nrs_serve::{
    NrsError, ServerConfig, Snapshot, ViewServer, ViewServerBuilder, WriterHandle,
};
pub use nrs_synthesis::{
    synthesize, synthesize_workload, ImplicitSpec, MaintainedRewriting, MaintainedWorkload,
    RewritingProblem, RewritingResult, SynthesisConfig, SynthesizedDefinition, Synthesizer,
    Workload, WorkloadProblem, WorkloadRewriting, WorkloadSynthesis,
};
pub use nrs_value::{Instance, Name, Type, Value};
