//! Cross-crate integration tests: the full implicit-to-explicit pipeline,
//! view rewriting, interpolation and the data/query substrate working
//! together, plus property-based tests over random instances.

use nested_synth::delta0::macros as d0;
use nested_synth::delta0::typing::TypeEnv;
use nested_synth::delta0::{Formula, InContext, Term};
use nested_synth::interp::{interpolate, Partition};
use nested_synth::nrc::spec::flatten_view;
use nested_synth::proof::{check_proof, Sequent};
use nested_synth::prover::{prove, prove_sequent, ProverConfig};
use nested_synth::synthesis::views::{materialize_views, partition_instance, partition_problem};
use nested_synth::synthesis::SynthesisConfig;
use nested_synth::value::generate::keyed_nested_instance;
use nested_synth::value::{Name, NameGen, Type, Value};
use proptest::prelude::*;

#[test]
fn corollary3_pipeline_end_to_end() {
    // spec → determinacy proof → synthesis → verified rewriting over the views
    let problem = partition_problem();
    let cfg = SynthesisConfig {
        check_determinacy: true,
        ..Default::default()
    };
    let rewriting = problem.derive_rewriting(&cfg).expect("rewriting exists");
    assert!(rewriting.definition.report.goals_proved >= 2);
    for seed in 0..6 {
        let base = partition_instance(8, seed);
        assert!(rewriting.verify_on_base(&base).unwrap(), "seed {seed}");
        // answering from views alone agrees with the base query
        let views = materialize_views(&problem, &base).unwrap();
        let answer = rewriting.answer_from_views(&views).unwrap();
        let s = base.get(&Name::new("S")).unwrap();
        assert_eq!(&answer, s);
    }
}

#[test]
fn proofs_produced_by_the_prover_always_check() {
    // a grab-bag of valid sequents exercised across the stack
    let mut gen = NameGen::new();
    let goals = vec![
        Formula::or(Formula::eq_ur("x", "y"), Formula::neq_ur("x", "y")),
        Formula::forall(
            "z",
            "S",
            d0::member_hat(&Type::Ur, &Term::var("z"), &Term::var("S"), &mut gen),
        ),
        d0::implies(
            d0::subset(&Type::Ur, &Term::var("A"), &Term::var("B"), &mut gen),
            d0::subset(&Type::Ur, &Term::var("A"), &Term::var("B"), &mut gen),
        ),
    ];
    for goal in goals {
        let (proof, _) = prove(
            &InContext::new(),
            &[],
            std::slice::from_ref(&goal),
            &ProverConfig::default(),
        )
        .unwrap_or_else(|e| panic!("failed to prove {goal}: {e}"));
        check_proof(&proof).expect("prover output must check");
    }
}

#[test]
fn interpolants_respect_variable_sharing_on_view_specs() {
    // Left: the flattening view spec for copy 1; Right: copy 2 plus the
    // membership goal; the interpolant may only use the shared names (V, r).
    let row_ty = Type::prod(Type::Ur, Type::set(Type::Ur));
    let env = TypeEnv::from_pairs([
        (Name::new("B"), Type::set(row_ty.clone())),
        (Name::new("B2"), Type::set(row_ty.clone())),
        (Name::new("V"), Type::relation(2)),
    ]);
    let mut gen = NameGen::new();
    let spec1 = flatten_view("B", "V").io_spec(&env, &mut gen).unwrap();
    let spec2 = flatten_view("B2", "V").io_spec(&env, &mut gen).unwrap();
    // goal: a pair in V has a justifying row in B2 (provable from spec2 alone,
    // but stated so the interpolant must bridge the two sides)
    let goal = Formula::forall(
        "v",
        "V",
        Formula::exists(
            "b",
            "B2",
            Formula::eq_ur(Term::proj1(Term::var("v")), Term::proj1(Term::var("b"))),
        ),
    );
    let seq = Sequent::two_sided(InContext::new(), [spec1.clone(), spec2], [goal]);
    let (proof, _) = prove_sequent(&seq, &ProverConfig::default()).expect("provable");
    let partition = Partition::with_left([], [spec1.negate()]);
    let theta = interpolate(&proof, &partition).expect("interpolant");
    for v in theta.free_vars() {
        assert_ne!(
            v.as_str(),
            "B",
            "interpolant must not mention the left-only base copy"
        );
        assert_ne!(
            v.as_str(),
            "B2",
            "interpolant must not mention the right-only base copy"
        );
    }
}

#[test]
fn nested_view_semantics_match_direct_computation() {
    let row_ty = Type::prod(Type::Ur, Type::set(Type::Ur));
    let env = TypeEnv::from_pairs([(Name::new("B"), Type::set(row_ty))]);
    let mut gen = NameGen::new();
    let view = flatten_view("B", "V");
    let expr = view.to_nrc(&env, &mut gen).unwrap();
    for seed in 0..10 {
        let inst = keyed_nested_instance(6, 4, seed);
        let out = nested_synth::nrc::eval::eval(&expr, &inst).unwrap();
        assert_eq!(&out, inst.get(&Name::new("V")).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The synthesized partition rewriting is correct on arbitrary base data.
    #[test]
    fn prop_partition_rewriting_correct(size in 1usize..12, seed in 0u64..500) {
        // synthesize once (deterministic), then check against random instances
        use std::sync::OnceLock;
        static REWRITING: OnceLock<nested_synth::synthesis::views::RewritingResult> = OnceLock::new();
        let rewriting = REWRITING.get_or_init(|| {
            partition_problem()
                .derive_rewriting(&SynthesisConfig::default())
                .expect("rewriting exists")
        });
        let base = partition_instance(size, seed);
        prop_assert!(rewriting.verify_on_base(&base).unwrap());
    }

    /// Δ0 negation is semantically complementary on random nested instances.
    #[test]
    fn prop_negation_is_complementary(groups in 1usize..5, seed in 0u64..500) {
        let inst = keyed_nested_instance(groups, 3, seed);
        let mut gen = NameGen::new();
        let row_ty = Type::prod(Type::Ur, Type::set(Type::Ur));
        let formulas = vec![
            d0::key_constraint(&Name::new("B"), &row_ty, &mut gen),
            d0::second_nonempty(&Name::new("B"), &mut gen),
            Formula::exists("v", "V", Formula::eq_ur(Term::proj1(Term::var("v")), Term::proj2(Term::var("v")))),
        ];
        for f in formulas {
            let direct = nested_synth::delta0::eval::eval_formula(&f, &inst).unwrap();
            let negated = nested_synth::delta0::eval::eval_formula(&f.negate(), &inst).unwrap();
            prop_assert_ne!(direct, negated);
        }
    }

    /// Values survive a round trip through the atoms/enumeration helpers: any
    /// enumerated value of a type is well-typed for that type.
    #[test]
    fn prop_enumerated_values_are_well_typed(universe in 1u64..3) {
        let atoms: Vec<_> = (0..universe).map(nested_synth::value::Atom::new).collect();
        for ty in [
            Type::bool(),
            Type::prod(Type::Ur, Type::Ur),
            Type::set(Type::prod(Type::Ur, Type::Ur)),
        ] {
            for v in Value::enumerate(&ty, &atoms) {
                prop_assert!(v.has_type(&ty));
            }
        }
    }
}
