//! # criterion (offline stand-in)
//!
//! A use-site compatible subset of the `criterion` benchmarking crate for
//! offline builds: `criterion_group!` / `criterion_main!`, benchmark groups
//! with `sample_size` / `measurement_time`, `bench_function` /
//! `bench_with_input`, [`BenchmarkId`] and [`black_box`].
//!
//! Instead of criterion's statistical pipeline, each benchmark runs a short
//! warm-up followed by `sample_size` timed samples (each sample iterates the
//! closure enough times to cost ≳1 ms) within the `measurement_time` budget,
//! and reports mean / min / max ns-per-iteration.  Every benchmark also emits
//! one line of the form
//!
//! ```text
//! BENCH_JSON {"group":"E4_proof_search","bench":"subset_chain/2","mean_ns":…}
//! ```
//!
//! which `scripts/bench.sh` collects into the repository's JSON baseline.
//! Set `NRS_BENCH_FAST=1` to cap every budget at a few samples (used to smoke
//! the harness in CI without burning minutes).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level handle passed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _parent: self,
        }
    }

    /// Run a stand-alone benchmark (its own single-entry group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("prove", 8)` renders as `prove/8`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a bare parameter (mirrors criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_owned() }
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure that receives a reference to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Flush the group (kept for interface parity; reporting is per-bench).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let fast = std::env::var_os("NRS_BENCH_FAST").is_some();
        let sample_size = if fast { 2 } else { self.sample_size };
        let budget = if fast {
            Duration::from_millis(200)
        } else {
            self.measurement_time
        };

        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size,
            budget,
        };
        f(&mut bencher);
        let samples = &bencher.samples_ns;
        if samples.is_empty() {
            eprintln!(
                "warning: benchmark {}/{} never called iter()",
                self.name, id.full
            );
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:<40} time: [{:>12} {:>12} {:>12}]  ({} samples)",
            format!("{}/{}", self.name, id.full),
            format_ns(min),
            format_ns(mean),
            format_ns(max),
            samples.len(),
        );
        println!(
            "BENCH_JSON {{\"group\":{:?},\"bench\":{:?},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}",
            self.name,
            id.full,
            mean,
            min,
            max,
            samples.len(),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Measure `f`, discarding its output via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find how many iterations cost ≳1 ms so that
        // timer granularity doesn't dominate a sample.
        let calibration_start = Instant::now();
        black_box(f());
        let once = calibration_start.elapsed().max(Duration::from_nanos(50));
        let iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let deadline = Instant::now() + self.budget;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Like `iter`, but with per-iteration setup excluded from timing is not
    /// supported; the routine is timed as a whole (parity shim).
    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, f: F) {
        self.iter(f);
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions under one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        std::env::set_var("NRS_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit_test_group");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).full, "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).full, "9");
    }
}
