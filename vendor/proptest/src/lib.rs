//! # proptest (offline stand-in)
//!
//! A use-site compatible subset of the `proptest` crate for offline builds:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]` header),
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros, range
//! strategies, and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! * Generation is **deterministic**: the RNG is seeded from the test
//!   function's name, so a failure always reproduces.  There is no failure
//!   persistence file.
//! * There is **no shrinking** — the failing inputs are reported as-is.
//! * Strategies are plain samplers ([`Strategy::generate`]); combinators are
//!   limited to ranges, constants and `prop_map`.

use std::fmt;
use std::ops::Range;

/// How many cases to run, and (future) knobs mirroring the real crate.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (we use the property function's name), so
    /// every run of the same test sees the same inputs.
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A sampler of values — the stand-in's notion of a proptest strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// A strategy that always yields clones of one value (mirrors `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The glob-imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Define property tests.  Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn my_prop(x in 0u64..10, y in 1usize..4) { prop_assert!(x as usize + y > 0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)* ""),
                    $(&$arg),*
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body Ok(()) })();
                if let Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1, __config.cases, e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// Fail the current property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fail unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fail unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_surface_works(x in 0u64..10, y in 1usize..4) {
            prop_assert!(y >= 1);
            prop_assert_ne!(x + 10, x);
            prop_assert_eq!(y, y);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]

            #[allow(dead_code)]
            fn always_fails(x in 0u64..4) { prop_assert!(x > 100); }
        }
        always_fails();
    }
}
