//! # rand (offline stand-in)
//!
//! Deterministic replacement for the subset of `rand` the workload generators
//! use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open and inclusive integer ranges.
//!
//! The generator is splitmix64, *not* the ChaCha-based `StdRng` of the real
//! crate, so the concrete streams differ; the workspace only relies on
//! determinism-given-seed, which both provide.  Not cryptographically secure
//! — and the workload generators do not need it to be.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniformly distributed value.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit source.
pub trait RngCore {
    /// Next raw value.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`0..n`, `1..=max`, …).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random bool.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for the real `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble once so that small consecutive seeds do not produce
            // correlated first draws.
            let mut rng = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let draws_a: Vec<u64> = (0..10).map(|_| a.gen_range(0..u64::MAX)).collect();
        let draws_c: Vec<u64> = (0..10).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=4);
            assert!((1..=4).contains(&y));
        }
    }
}
