//! JSON encoding of [`Content`] trees — the offline
//! equivalent of `serde_json::{to_string, from_str}`.
//!
//! Maps whose keys all serialize to strings are emitted as JSON objects (the
//! common case: structs, `BTreeMap<Name, _>`), anything else as an array of
//! `[key, value]` pairs.  The parser is a small recursive-descent JSON reader
//! supporting exactly what the writer emits plus arbitrary whitespace.

use crate::{Content, Deserialize, Error, Serialize};

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out);
    out
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    T::deserialize(&content)
}

/// Parse a JSON string into a raw [`Content`] tree.
pub fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    Ok(value)
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Unit => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            if pairs.iter().all(|(k, _)| matches!(k, Content::Str(_))) {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_content(k, out);
                    out.push(':');
                    write_content(v, out);
                }
                out.push('}');
            } else {
                // Non-string keys: arrays of [key, value] pairs.
                out.push('[');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    write_content(k, out);
                    out.push(',');
                    write_content(v, out);
                    out.push(']');
                }
                out.push(']');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.keyword("null", Content::Unit),
            b't' => self.keyword("true", Content::Bool(true)),
            b'f' => self.keyword("false", Content::Bool(false)),
            b'"' => Ok(Content::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid keyword at byte {}",
                self.pos
            )))
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        let negative = self.bytes[self.pos] == b'-';
        if negative {
            self.pos += 1;
        }
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if negative {
            text.parse::<i64>().map(Content::I64)
        } else {
            text.parse::<u64>().map(Content::U64)
        }
        .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy up to the next quote or backslash: neither byte can
            // occur inside a multi-byte UTF-8 sequence, so scanning bytes is
            // safe, and the input came from a `&str`, so each chunk is valid
            // UTF-8 (validated once per chunk, keeping parsing linear).
            let rest = &self.bytes[self.pos..];
            let stop = rest
                .iter()
                .position(|&b| b == b'"' || b == b'\\')
                .ok_or_else(|| Error::custom("unterminated string"))?;
            out.push_str(
                std::str::from_utf8(&rest[..stop]).map_err(|_| Error::custom("invalid utf-8"))?,
            );
            self.pos += stop;
            if self.bytes[self.pos] == b'"' {
                self.pos += 1;
                return Ok(out);
            }
            // Backslash escape.
            self.pos += 1;
            match self.bytes.get(self.pos).copied() {
                Some(b'"') => out.push('"'),
                Some(b'\\') => out.push('\\'),
                Some(b'/') => out.push('/'),
                Some(b'n') => out.push('\n'),
                Some(b'r') => out.push('\r'),
                Some(b't') => out.push('\t'),
                Some(b'u') => {
                    let hex = self
                        .bytes
                        .get(self.pos + 1..self.pos + 5)
                        .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                    let hex =
                        std::str::from_utf8(hex).map_err(|_| Error::custom("bad \\u escape"))?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| Error::custom("bad \\u escape"))?;
                    out.push(
                        char::from_u32(code).ok_or_else(|| Error::custom("invalid codepoint"))?,
                    );
                    self.pos += 4;
                }
                other => {
                    return Err(Error::custom(format!("bad escape {other:?}")));
                }
            }
            self.pos += 1;
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
        } else {
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        break;
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected ',' or ']', found {:?}",
                            other as char
                        )))
                    }
                }
            }
        }
        // An array of 2-element arrays could be a map with non-string keys,
        // but we cannot distinguish it from a genuine sequence of pairs here;
        // `Deserialize` impls for maps accept both shapes.
        Ok(Content::Seq(items))
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                let value = self.value()?;
                pairs.push((Content::Str(key), value));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        break;
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "expected ',' or '}}', found {:?}",
                            other as char
                        )))
                    }
                }
            }
        }
        Ok(Content::Map(pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars() {
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(from_str::<u64>("42"), Ok(42));
        assert_eq!(to_string(&-5i64), "-5");
        assert_eq!(from_str::<i64>(" -5 "), Ok(-5));
        assert_eq!(to_string(&true), "true");
        assert_eq!(from_str::<bool>("false"), Ok(false));
    }

    #[test]
    fn strings_with_escapes() {
        let s = "a\"b\\c\nd\tüñ".to_owned();
        let json = to_string(&s);
        assert_eq!(from_str::<String>(&json), Ok(s));
    }

    #[test]
    fn nested_containers() {
        let m: BTreeMap<String, Vec<u64>> =
            [("xs".to_owned(), vec![1, 2]), ("ys".to_owned(), vec![])]
                .into_iter()
                .collect();
        let json = to_string(&m);
        assert_eq!(json, r#"{"xs":[1,2],"ys":[]}"#);
        assert_eq!(from_str::<BTreeMap<String, Vec<u64>>>(&json), Ok(m));
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // ~1 MB string with escapes sprinkled in; quadratic parsing would
        // take minutes here, linear parsing is instant.
        let big: String = "aé\\\"x".repeat(200_000);
        let json = to_string(&big);
        let start = std::time::Instant::now();
        assert_eq!(from_str::<String>(&json), Ok(big));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "string parsing is superlinear: took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
