//! # serde (offline stand-in)
//!
//! This workspace builds in fully offline environments, so it cannot pull the
//! real `serde` from crates.io.  This crate is a *use-site compatible*
//! replacement: code written as
//!
//! ```ignore
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize)]
//! struct Foo { a: u64, b: Vec<String> }
//! ```
//!
//! compiles and works unchanged.  What differs is the machinery underneath:
//! instead of the visitor-based zero-copy data model of real serde, this crate
//! serializes through a single self-describing tree, [`Content`], and ships a
//! JSON front-end in [`json`].  The derive macros (re-exported from
//! `serde_derive`) generate impls against that simplified model and follow the
//! real serde conventions for shapes:
//!
//! * named-field structs → maps keyed by field name;
//! * 1-field tuple structs (newtypes) → the inner value, transparently;
//! * n-field tuple structs → sequences;
//! * unit enum variants → the variant name as a string;
//! * data-carrying enum variants → externally tagged: `{ "Variant": payload }`.
//!
//! Because the wire shapes match serde_json's defaults for the same derives,
//! swapping the real `serde`/`serde_json` back in (when a registry is
//! available) only requires replacing custom `impl Serialize`/`Deserialize`
//! blocks — derived types keep their encodings.
//!
//! Only the surface the workspace actually uses is provided; this is not a
//! general-purpose serde replacement.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The self-describing serialization tree — the entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `()`, unit structs and `None`.
    Unit,
    /// Booleans.
    Bool(bool),
    /// All unsigned integers.
    U64(u64),
    /// All signed integers (only used when the value is negative or the
    /// source type is signed).
    I64(i64),
    /// Strings.
    Str(String),
    /// Sequences: `Vec`, `BTreeSet`, tuples, tuple structs.
    Seq(Vec<Content>),
    /// Maps: structs (string keys) and `BTreeMap`s (arbitrary keys).
    /// Represented as a pair list so non-string keys survive.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Look up a string-keyed entry in a [`Content::Map`] — the accessor the
    /// derived `Deserialize` impls use for named fields.
    pub fn get_field(&self, name: &str) -> Option<&Content> {
        match self {
            Content::Map(pairs) => pairs
                .iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == name))
                .map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be serialized into a [`Content`] tree.
pub trait Serialize {
    /// Produce the self-describing tree for `self`.
    fn serialize(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value from the tree, or explain why the shape is wrong.
    fn deserialize(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Content::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Content::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Content {
        Content::Unit
    }
}

impl Deserialize for () {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Unit => Ok(()),
            other => Err(Error::custom(format!("expected unit, found {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        T::deserialize(content).map(Box::new)
    }
}

// Shared pointers serialize transparently, like real serde's `rc` feature.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        T::deserialize(content).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        T::deserialize(content).map(std::rc::Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            None => Content::Unit,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Unit => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.serialize(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
                .collect(),
            // The JSON layer lowers maps with non-string keys to sequences of
            // [key, value] pairs; accept that shape on the way back in.
            Content::Seq(items) => items
                .iter()
                .map(|item| match item {
                    Content::Seq(kv) if kv.len() == 2 => {
                        Ok((K::deserialize(&kv[0])?, V::deserialize(&kv[1])?))
                    }
                    other => Err(Error::custom(format!(
                        "expected [key, value] pair, found {other:?}"
                    ))),
                })
                .collect(),
            other => Err(Error::custom(format!("expected map, found {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match content {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {LEN}-tuple, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&7u64.serialize()), Ok(7));
        assert_eq!(i64::deserialize(&(-3i64).serialize()), Ok(-3));
        assert_eq!(
            String::deserialize(&"hi".to_owned().serialize()),
            Ok("hi".to_owned())
        );
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()), Ok(v));
        let m: BTreeMap<String, u64> = [("a".to_owned(), 1)].into_iter().collect();
        assert_eq!(BTreeMap::deserialize(&m.serialize()), Ok(m));
        let pair = (1u64, "x".to_owned());
        assert_eq!(<(u64, String)>::deserialize(&pair.serialize()), Ok(pair));
    }

    #[test]
    fn shape_mismatch_reports_error() {
        assert!(u64::deserialize(&Content::Str("no".into())).is_err());
        assert!(Vec::<u64>::deserialize(&Content::Bool(true)).is_err());
    }
}
