//! Derive macros for the offline `serde` stand-in.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable in
//! this offline workspace, so these derives parse the item declaration
//! directly from the raw token stream and emit the impl as a formatted string.
//! Supported shapes are exactly what the workspace uses: non-generic structs
//! (unit, tuple, named) and non-generic enums with unit / tuple / named-field
//! variants.  Generics, `where` clauses and `#[serde(...)]` attributes are
//! rejected with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (offline data-model variant).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (offline data-model variant).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive generated invalid Rust; this is a bug"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// A tiny item model
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    /// Tuple fields; only the count matters (types are recovered by inference).
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "offline serde_derive does not support generic type `{name}`"
        ));
    }

    if kind == "struct" {
        let fields = match tokens.get(i) {
            None | Some(TokenTree::Punct(_)) => Fields::Unit, // `struct X;`
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            other => return Err(format!("unexpected struct body {other:?}")),
        };
        Ok(Item {
            name,
            shape: Shape::Struct(fields),
        })
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("expected enum body, found {other:?}")),
        };
        Ok(Item {
            name,
            shape: Shape::Enum(parse_variants(body)?),
        })
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Split a token sequence on commas that sit outside any `<...>` nesting.
/// (Commas inside `(..)`/`[..]`/`{..}` are already hidden inside groups.)
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tt);
    }
    if parts.last().map(Vec::is_empty).unwrap_or(false) {
        parts.pop(); // trailing comma
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|field| {
            let mut i = 0;
            skip_attrs_and_vis(&field, &mut i);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|variant| {
            let mut i = 0;
            skip_attrs_and_vis(&variant, &mut i);
            let name = match variant.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            i += 1;
            let fields = match variant.get(i) {
                None => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                other => return Err(format!("unexpected tokens in variant: {other:?}")),
            };
            Ok(Variant { name, fields })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

const CONTENT: &str = "::serde::Content";

fn str_content(s: &str) -> String {
    format!("{CONTENT}::Str(::std::string::String::from({s:?}))")
}

/// `Content` expression for a payload given expressions for each field ref.
fn seq_of(refs: &[String]) -> String {
    format!(
        "{CONTENT}::Seq(::std::vec![{}])",
        refs.iter()
            .map(|r| format!("::serde::Serialize::serialize({r})"))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn map_of_named(names: &[String], prefix: &str) -> String {
    format!(
        "{CONTENT}::Map(::std::vec![{}])",
        names
            .iter()
            .map(|n| {
                format!(
                    "({}, ::serde::Serialize::serialize({prefix}{n}))",
                    str_content(n)
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!("{CONTENT}::Unit"),
        // Newtype structs are transparent, matching serde_json's default.
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_owned(),
        Shape::Struct(Fields::Tuple(n)) => {
            let refs: Vec<String> = (0..*n).map(|i| format!("&self.{i}")).collect();
            seq_of(&refs)
        }
        Shape::Struct(Fields::Named(names)) => map_of_named(names, "&self."),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = str_content(&v.name);
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{v} => {tag},", v = v.name)
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{v}(f0) => {CONTENT}::Map(::std::vec![({tag}, \
                             ::serde::Serialize::serialize(f0))]),",
                            v = v.name
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = seq_of(&binders);
                            format!(
                                "{name}::{v}({bs}) => {CONTENT}::Map(::std::vec![({tag}, {payload})]),",
                                v = v.name,
                                bs = binders.join(", ")
                            )
                        }
                        Fields::Named(names_) => {
                            let payload = map_of_named(names_, "");
                            format!(
                                "{name}::{v} {{ {bs} }} => {CONTENT}::Map(::std::vec![({tag}, {payload})]),",
                                v = v.name,
                                bs = names_.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn serialize(&self) -> {CONTENT} {{ {body} }} \
         }}"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

fn err(msg: &str) -> String {
    format!("::serde::Error::custom(::std::format!({msg:?}, __other = __content))")
}

/// Constructor call for named fields pulled out of a map expression `$src`.
fn named_ctor(path: &str, names: &[String], src: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|n| {
            format!(
                "{n}: ::serde::Deserialize::deserialize({src}.get_field({n:?})\
                 .ok_or_else(|| ::serde::Error::custom(\
                 ::std::concat!(\"missing field `\", {n:?}, \"`\")))?)?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", fields.join(", "))
}

/// Constructor call for `n` tuple fields from a slice expression `$items`.
fn tuple_ctor(path: &str, n: usize, items: &str) -> String {
    let fields: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::deserialize(&{items}[{i}])?"))
        .collect();
    format!("{path}({})", fields.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!(
            "match __content {{ {CONTENT}::Unit => ::std::result::Result::Ok({name}), \
             _ => ::std::result::Result::Err({e}) }}",
            e = err("expected unit for {__other:?}")
        ),
        Shape::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__content)?))"
        ),
        Shape::Struct(Fields::Tuple(n)) => format!(
            "match __content {{ \
               {CONTENT}::Seq(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({ctor}), \
               _ => ::std::result::Result::Err({e}) \
             }}",
            ctor = tuple_ctor(name, *n, "__items"),
            e = err("expected sequence, found {__other:?}")
        ),
        Shape::Struct(Fields::Named(names)) => format!(
            "::std::result::Result::Ok({})",
            named_ctor(name, names, "__content")
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{tag:?} => ::std::result::Result::Ok({name}::{tag}),",
                        tag = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let path = format!("{name}::{}", v.name);
                    let arm = match &v.fields {
                        Fields::Unit => return None,
                        Fields::Tuple(1) => format!(
                            "::std::result::Result::Ok({path}(\
                             ::serde::Deserialize::deserialize(__payload)?))"
                        ),
                        Fields::Tuple(n) => format!(
                            "match __payload {{ \
                               {CONTENT}::Seq(__items) if __items.len() == {n} => \
                                 ::std::result::Result::Ok({ctor}), \
                               _ => ::std::result::Result::Err({e}) \
                             }}",
                            ctor = tuple_ctor(&path, *n, "__items"),
                            e = err("bad payload for variant, found {__other:?}")
                        ),
                        Fields::Named(names_) => format!(
                            "::std::result::Result::Ok({})",
                            named_ctor(&path, names_, "__payload")
                        ),
                    };
                    Some(format!("{tag:?} => {arm},", tag = v.name))
                })
                .collect();
            format!(
                "match __content {{ \
                   {CONTENT}::Str(__s) => match __s.as_str() {{ \
                     {unit_arms} \
                     _ => ::std::result::Result::Err({e_unit}) \
                   }}, \
                   {CONTENT}::Map(__pairs) if __pairs.len() == 1 => {{ \
                     let (__tag, __payload) = &__pairs[0]; \
                     match __tag {{ \
                       {CONTENT}::Str(__s) => match __s.as_str() {{ \
                         {data_arms} \
                         _ => ::std::result::Result::Err({e_tag}) \
                       }}, \
                       _ => ::std::result::Result::Err({e_key}) \
                     }} \
                   }}, \
                   _ => ::std::result::Result::Err({e_shape}) \
                 }}",
                unit_arms = unit_arms.join(" "),
                data_arms = data_arms.join(" "),
                e_unit = err("unknown unit variant in {__other:?}"),
                e_tag = err("unknown variant tag in {__other:?}"),
                e_key = err("variant tag must be a string, found {__other:?}"),
                e_shape = err("expected enum encoding, found {__other:?}"),
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn deserialize(__content: &{CONTENT}) \
               -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
